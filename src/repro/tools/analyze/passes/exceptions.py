"""THRA102/THRA103 — interprocedural exception flow.

Computes, for every function in the program, the set of exception types
that can *escape* it (a fixpoint over the call graph, with ``try``/
``except`` absorption modelled per raise site), then derives two checks:

* **THRA102** — a builtin exception (``ValueError``, ``KeyError``, …) can
  escape a public function.  THR002 already bans *raising* builtins inside
  ``src/repro``; this closes the interprocedural half: a private helper's
  builtin raise surfacing through a public wrapper.
* **THRA103** — an ``except SomeReproError`` handler whose try body cannot
  produce that type (nor a sub/supertype of it): dead fault-handling code,
  usually left behind when a callee's error contract changed.

Both checks are deliberately conservative around what the call graph cannot
see: a try body containing an opaque call (callback, untyped dispatch) or a
call into an *open* function (one that itself makes opaque calls) is never
reported dead, and unresolvable raise expressions contribute nothing.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from ..config import AnalyzeConfig
from ..findings import Finding, finding_at
from ..graph import FunctionInfo, ProgramGraph
from . import AnalysisPass, register

__all__ = [
    "EscapeAnalysis",
    "get_escape_analysis",
    "PublicBuiltinEscapePass",
    "DeadHandlerPass",
]

_UNKNOWN = "<unknown>"
_CATCH_ALL = "BaseException"

#: Partial builtin exception hierarchy — enough to decide subtype questions
#: for the exceptions this codebase (and realistic Python) raises.
_BUILTIN_PARENTS: dict[str, str] = {
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "LookupError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "ValueError": "Exception",
    "TypeError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "AttributeError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "TimeoutError": "OSError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "GeneratorExit": "BaseException",
    "AssertionError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "MemoryError": "Exception",
    "SyntaxError": "Exception",
    "SystemExit": "BaseException",
    "KeyboardInterrupt": "BaseException",
}

#: Builtins never reported by THRA102: abstract-method markers and the
#: iterator/interpreter control-flow exceptions.
_EXEMPT_BUILTINS = frozenset(
    {"NotImplementedError", "StopIteration", "StopAsyncIteration", "GeneratorExit",
     "SystemExit", "KeyboardInterrupt"}
)

_MAX_ITERATIONS = 50

#: One fixpoint per graph, shared by THRA102 and THRA103 within a run.
_ANALYSIS_CACHE: dict[int, tuple["ProgramGraph", "EscapeAnalysis"]] = {}


def get_escape_analysis(graph: ProgramGraph) -> "EscapeAnalysis":
    cached = _ANALYSIS_CACHE.get(id(graph))
    if cached is not None and cached[0] is graph:
        return cached[1]
    analysis = EscapeAnalysis(graph)
    _ANALYSIS_CACHE[id(graph)] = (graph, analysis)
    return analysis


def _builtin_ancestors(name: str) -> set[str]:
    out = {name}
    while name in _BUILTIN_PARENTS:
        name = _BUILTIN_PARENTS[name]
        out.add(name)
    return out


class EscapeAnalysis:
    """Per-function escaping-exception sets, plus an *open* bit.

    A function is open when it (transitively) makes a call the graph cannot
    resolve — its escape set is then a lower bound, not the full story.
    """

    def __init__(self, graph: ProgramGraph) -> None:
        self.graph = graph
        self.escapes: Dict[str, frozenset[str]] = {q: frozenset() for q in graph.functions}
        self.open: Dict[str, bool] = {q: False for q in graph.functions}
        self._compute()

    # ----------------------------------------------------------- type model

    def ancestors(self, type_name: str) -> set[str]:
        """All (internal + builtin) supertypes of an exception type name."""
        if type_name in self.graph.classes:
            out: set[str] = set()
            externals: set[str] = set()
            for cls in self.graph.mro(type_name):
                out.add(cls.qualname)
                for base in cls.bases:
                    if base not in self.graph.classes:
                        externals.add(base.rsplit(".", 1)[-1])
            for ext in externals:
                out |= _builtin_ancestors(ext)
            return out
        return _builtin_ancestors(type_name)

    def is_subtype(self, type_name: str, super_name: str) -> bool:
        if type_name == _UNKNOWN or super_name == _UNKNOWN:
            return False
        return super_name in self.ancestors(type_name)

    def resolve_exception(self, fn: FunctionInfo, expr: Optional[ast.expr]) -> str:
        """Exception type name raised/caught by ``expr`` (``<unknown>`` if unclear)."""
        if expr is None:
            return _UNKNOWN
        if isinstance(expr, ast.Call):
            return self.resolve_exception(fn, expr.func)
        module = self.graph.modules[fn.module]
        if isinstance(expr, ast.Name):
            resolved = self.graph.resolve_scope_name(module, expr.id)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            if resolved is None and expr.id in _BUILTIN_PARENTS or expr.id == _CATCH_ALL:
                return expr.id
            return _UNKNOWN
        if isinstance(expr, ast.Attribute):
            value = expr.value
            if isinstance(value, ast.Name):
                resolved = self.graph.resolve_scope_name(module, value.id)
                if resolved is not None and resolved[0] == "module":
                    target = self.graph.modules.get(resolved[1])
                    if target is not None and expr.attr in target.classes:
                        return target.classes[expr.attr].qualname
            return _UNKNOWN
        return _UNKNOWN

    def handler_types(self, fn: FunctionInfo, handler: ast.ExceptHandler) -> list[str]:
        """Types one handler catches; unresolved types widen to catch-all."""
        if handler.type is None:
            return [_CATCH_ALL]
        exprs = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        out: list[str] = []
        for expr in exprs:
            resolved = self.resolve_exception(fn, expr)
            out.append(_CATCH_ALL if resolved == _UNKNOWN else resolved)
        return out

    def _absorbed(self, type_name: str, handlers: Sequence[Sequence[str]]) -> bool:
        for frame in handlers:
            for caught in frame:
                if caught == _CATCH_ALL or self.is_subtype(type_name, caught):
                    return True
        return False

    # -------------------------------------------------------- the fixpoint

    def _compute(self) -> None:
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for qualname, fn in self.graph.functions.items():
                out: set[str] = set()
                state = {"open": False}
                for stmt in fn.node.body:
                    self._walk_stmt(stmt, fn, [], frozenset(), out, state)
                new_escapes = frozenset(out)
                new_open = state["open"]
                if new_escapes != self.escapes[qualname] or new_open != self.open[qualname]:
                    self.escapes[qualname] = new_escapes
                    self.open[qualname] = new_open
                    changed = True
            if not changed:
                return

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        fn: FunctionInfo,
        handlers: list[list[str]],
        reraise: frozenset[str],
        out: set[str],
        state: dict[str, bool],
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs when *called*, typically outside the
            # lexically enclosing try — analyze its body without handlers.
            for inner in stmt.body:
                self._walk_stmt(inner, fn, [], frozenset(), out, state)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Raise):
            self._scan_exprs(stmt, fn, handlers, out, state)
            if stmt.exc is None:
                raised = set(reraise) or {_UNKNOWN}
            else:
                raised = {self.resolve_exception(fn, stmt.exc)}
            for type_name in raised:
                if type_name == _UNKNOWN:
                    state["open"] = True
                    continue
                if not self._absorbed(type_name, handlers):
                    out.add(type_name)
            return
        if isinstance(stmt, ast.Try):
            caught_here = [
                t
                for handler in stmt.handlers
                for t in self.handler_types(fn, handler)
            ]
            for inner in stmt.body:
                self._walk_stmt(inner, fn, handlers + [caught_here], reraise, out, state)
            for handler in stmt.handlers:
                own = frozenset(self.handler_types(fn, handler))
                for inner in handler.body:
                    self._walk_stmt(inner, fn, handlers, own, out, state)
            for inner in [*stmt.orelse, *stmt.finalbody]:
                self._walk_stmt(inner, fn, handlers, reraise, out, state)
            return
        self._scan_exprs(stmt, fn, handlers, out, state)
        for _field, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        self._walk_stmt(item, fn, handlers, reraise, out, state)
                    elif isinstance(item, ast.match_case):
                        for inner in item.body:
                            self._walk_stmt(inner, fn, handlers, reraise, out, state)

    def _scan_exprs(
        self,
        stmt: ast.stmt,
        fn: FunctionInfo,
        handlers: list[list[str]],
        out: set[str],
        state: dict[str, bool],
    ) -> None:
        """Escapes contributed by the calls/property reads in one statement."""
        exprs: list[ast.expr] = []
        for _field, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                exprs.append(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        exprs.append(item)
                    elif isinstance(item, (ast.withitem, ast.keyword)):
                        for _f2, v2 in ast.iter_fields(item):
                            if isinstance(v2, ast.expr):
                                exprs.append(v2)
        call_funcs: set[int] = set()
        nodes: list[ast.AST] = []
        for expr in exprs:
            for node in ast.walk(expr):
                nodes.append(node)
                if isinstance(node, ast.Call):
                    call_funcs.add(id(node.func))
        for node in nodes:
            if isinstance(node, ast.Call):
                resolution = self.graph.resolve_call(fn, node)
                if resolution.opaque:
                    state["open"] = True
                for target in resolution.targets:
                    if self.open.get(target, False):
                        state["open"] = True
                    for type_name in self.escapes.get(target, frozenset()):
                        if not self._absorbed(type_name, handlers):
                            out.add(type_name)
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in call_funcs
            ):
                for prop in self.graph.resolve_property(fn, node):
                    for type_name in self.escapes.get(prop.qualname, frozenset()):
                        if not self._absorbed(type_name, handlers):
                            out.add(type_name)

    # ------------------------------------------------- producible-in-a-try

    def producible_in(self, fn: FunctionInfo, body: Sequence[ast.stmt]) -> tuple[set[str], bool]:
        """Exception types a try body can produce, and whether that set is closed.

        Over-approximates (no absorption by nested handlers inside the
        body), which is the safe direction for declaring a handler dead.
        """
        produced: set[str] = set()
        closed = True
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    if node.exc is None:
                        closed = False
                        continue
                    type_name = self.resolve_exception(fn, node.exc)
                    if type_name == _UNKNOWN:
                        closed = False
                    else:
                        produced.add(type_name)
                elif isinstance(node, ast.Call):
                    resolution = self.graph.resolve_call(fn, node)
                    if resolution.opaque:
                        closed = False
                    for target in resolution.targets:
                        if self.open.get(target, False):
                            closed = False
                        produced |= set(self.escapes.get(target, frozenset()))
                elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                    for prop in self.graph.resolve_property(fn, node):
                        if self.open.get(prop.qualname, False):
                            closed = False
                        produced |= set(self.escapes.get(prop.qualname, frozenset()))
        return produced, closed


def _is_public(graph: ProgramGraph, fn: FunctionInfo) -> bool:
    """Public API: no single-underscore segment between package and name."""
    parts = fn.qualname.split(".")
    for part in parts[1:]:
        if part.startswith("_") and not (part.startswith("__") and part.endswith("__")):
            return False
    return True


def _internal_error_classes(analysis: EscapeAnalysis, graph: ProgramGraph) -> set[str]:
    """Internal classes whose ancestry reaches ``Exception``."""
    return {
        qualname
        for qualname in graph.classes
        if "Exception" in analysis.ancestors(qualname)
    }


@register
class PublicBuiltinEscapePass(AnalysisPass):
    code = "THRA102"
    name = "exception-escape"
    summary = "builtin exception can escape a public function"

    def run(self, graph: ProgramGraph, config: AnalyzeConfig) -> List[Finding]:
        analysis = get_escape_analysis(graph)
        findings: list[Finding] = []
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if not _is_public(graph, fn):
                continue
            for type_name in sorted(analysis.escapes[qualname]):
                if type_name in graph.classes or type_name in _EXEMPT_BUILTINS:
                    continue
                if type_name not in _BUILTIN_PARENTS:
                    continue
                if not analysis.is_subtype(type_name, "Exception"):
                    continue
                findings.append(
                    finding_at(
                        code=self.code,
                        message=(
                            f"builtin {type_name} can escape public function "
                            f"{fn.display}; raise a ReproError subclass instead"
                        ),
                        path=fn.path,
                        root=graph.root,
                        scope=fn.display,
                        label=type_name,
                        node=fn.node,
                    )
                )
        return findings


@register
class DeadHandlerPass(AnalysisPass):
    code = "THRA103"
    name = "dead-handler"
    summary = "except handler for a library error that its try body cannot raise"

    def run(self, graph: ProgramGraph, config: AnalyzeConfig) -> List[Finding]:
        analysis = get_escape_analysis(graph)
        error_classes = _internal_error_classes(analysis, graph)
        findings: list[Finding] = []
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Try):
                    continue
                produced, closed = analysis.producible_in(fn, node.body)
                if not closed:
                    continue
                for handler in node.handlers:
                    for caught in self.handler_types_of(analysis, fn, handler):
                        if caught not in error_classes:
                            continue
                        live = any(
                            analysis.is_subtype(t, caught) or analysis.is_subtype(caught, t)
                            for t in produced
                        )
                        if live:
                            continue
                        short = caught.rsplit(".", 1)[-1]
                        findings.append(
                            finding_at(
                                code=self.code,
                                message=(
                                    f"except {short} in {fn.display} can never fire: "
                                    "the try body raises no such error"
                                ),
                                path=fn.path,
                                root=graph.root,
                                scope=fn.display,
                                label=short,
                                node=handler,
                            )
                        )
        return findings

    @staticmethod
    def handler_types_of(
        analysis: EscapeAnalysis, fn: FunctionInfo, handler: ast.ExceptHandler
    ) -> list[str]:
        return [t for t in analysis.handler_types(fn, handler) if t != _CATCH_ALL]
