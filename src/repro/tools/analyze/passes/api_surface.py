"""THRA105 — API-surface drift between ``__all__`` exports and the API docs.

Every name a *package* ``__init__.py`` exports through ``__all__`` is part
of the public surface and must be mentioned in ``docs/API.md`` (word-exact;
a prose mention or a code-span both count).  Without this check the doc
rots silently: an export added in one PR is invisible to readers of the
API tour until someone notices by accident.

The pass only checks package ``__init__.py`` modules — a leaf module's
``__all__`` is an import-hygiene tool, not a documentation contract.  It is
skipped entirely when no API document is configured (fixture packages).
"""

from __future__ import annotations

import re
from typing import List

from ....errors import AnalysisError
from ..config import AnalyzeConfig
from ..findings import Finding, finding_at
from ..graph import ProgramGraph
from . import AnalysisPass, register

__all__ = ["ApiSurfaceDriftPass"]


@register
class ApiSurfaceDriftPass(AnalysisPass):
    code = "THRA105"
    name = "api-surface"
    summary = "__all__ export missing from the API document"

    def run(self, graph: ProgramGraph, config: AnalyzeConfig) -> List[Finding]:
        if config.api_doc is None:
            return []
        try:
            document = config.api_doc.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read API document {config.api_doc}: {exc}") from exc
        findings: list[Finding] = []
        for name in sorted(graph.modules):
            module = graph.modules[name]
            if not module.is_package:
                continue
            for export, line in module.exports:
                if export.startswith("__"):
                    continue  # dunders (__version__) are metadata, not API
                if re.search(rf"\b{re.escape(export)}\b", document):
                    continue
                findings.append(
                    finding_at(
                        code=self.code,
                        message=(
                            f"{module.name}.__all__ exports {export!r} but "
                            f"{config.api_doc.name} never mentions it"
                        ),
                        path=module.path,
                        root=graph.root,
                        scope=module.name,
                        label=export,
                        line=line,
                    )
                )
        return findings
