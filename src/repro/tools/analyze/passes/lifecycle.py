"""THRA104 — lifecycle transitions verified against a declared table.

For every enum named in a :class:`~repro.tools.analyze.config.TransitionTable`
the pass finds each attribute that holds it (any ``self.<attr> = Enum.MEMBER``
assignment), then abstractly interprets every method that assigns the
attribute: the set of states the object may be in is narrowed by the guards
dominating each assignment (``if self._state != X: raise``, membership
tests, single-``return`` property guards like ``is_available``) and each
assignment is checked as a transition *from every state still possible* —
so one missing guard clause (the classic ``DOWN -> DEGRADED`` regression)
is caught even though every individual line is legal.

Constructors (``__init__``/``__post_init__``) are checked against the
table's declared initial states instead.  Assignments through anything
other than ``self`` are flagged unconditionally: lifecycle state belongs to
the owning class's methods.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Tuple

from ..config import AnalyzeConfig, TransitionTable
from ..findings import Finding, finding_at
from ..graph import ClassInfo, FunctionInfo, ProgramGraph, attr_chain
from . import AnalysisPass, register

__all__ = ["LifecycleTransitionPass"]

_CONSTRUCTORS = ("__init__", "__post_init__")

States = frozenset[str]
#: (possible-states-if-true, possible-states-if-false), or None when the
#: expression says nothing about the state attribute.
Constraint = Optional[Tuple[States, States]]


def _enum_members(cls: ClassInfo) -> frozenset[str]:
    """Member names of an enum class (plain class-body Name assignments)."""
    out: set[str] = set()
    for stmt in cls.node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    out.add(target.id)
    return frozenset(out)


class _StateMachine:
    """One (enum, table) pair resolved against the program graph."""

    def __init__(self, graph: ProgramGraph, table: TransitionTable, enum: ClassInfo) -> None:
        self.graph = graph
        self.table = table
        self.enum = enum
        self.members = _enum_members(enum)

    def member_of(self, fn: FunctionInfo, expr: ast.expr) -> Optional[str]:
        """The member name when ``expr`` is ``<Enum>.<MEMBER>`` of this enum."""
        chain = attr_chain(expr)
        if len(chain) != 2 or chain[1] not in self.members:
            return None
        module = self.graph.modules[fn.module]
        resolved = self.graph.resolve_scope_name(module, chain[0])
        if resolved is not None and resolved[0] == "class" and resolved[1] == self.enum.qualname:
            return chain[1]
        return None


class _MethodChecker:
    """Abstract interpretation of one method over one state attribute."""

    def __init__(
        self,
        machine: _StateMachine,
        fn: FunctionInfo,
        attr: str,
        pass_code: str,
        findings: list[Finding],
    ) -> None:
        self.machine = machine
        self.graph = machine.graph
        self.fn = fn
        self.attr = attr
        self.pass_code = pass_code
        self.findings = findings
        self.constructor = fn.name in _CONSTRUCTORS

    # ------------------------------------------------------------- plumbing

    def check(self) -> None:
        initial: Optional[States]
        if self.constructor:
            initial = None  # unborn: first assignment must be an initial state
        else:
            initial = self.machine.members
        self._block(self.fn.node.body, initial)

    def _is_state_attr(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == self.attr
            and attr_chain(expr) == ("self", self.attr)
        )

    def _report(self, node: ast.AST, message: str, label: str) -> None:
        self.findings.append(
            finding_at(
                code=self.pass_code,
                message=message,
                path=self.fn.path,
                root=self.graph.root,
                scope=self.fn.display,
                label=label,
                node=node,
            )
        )

    # ------------------------------------------------------------ the walk

    def _block(
        self, stmts: Sequence[ast.stmt], states: Optional[States]
    ) -> tuple[Optional[States], bool]:
        """Interpret a statement list; returns (fall-through states, terminated)."""
        for stmt in stmts:
            states, terminated = self._stmt(stmt, states)
            if terminated:
                return (states, True)
        return (states, False)

    def _stmt(
        self, stmt: ast.stmt, states: Optional[States]
    ) -> tuple[Optional[States], bool]:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if self._is_state_attr(target):
                    member = self.machine.member_of(self.fn, stmt.value)
                    if member is not None:
                        states = self._check_assignment(stmt, states, member)
                    else:
                        # Value we cannot read (variable, call): widen.
                        states = self.machine.members
            return (states, False)
        if isinstance(stmt, (ast.Raise, ast.Return)):
            return (states, True)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return (states, True)
        if isinstance(stmt, ast.If):
            constraint = self._constrain(stmt.test, states)
            if constraint is None:
                true_states, false_states = states, states
            else:
                true_states, false_states = constraint
            body_out, body_term = self._block(stmt.body, true_states)
            else_out, else_term = self._block(stmt.orelse, false_states)
            if body_term and else_term:
                return (frozenset(), True)
            if body_term:
                return (else_out, False)
            if else_term:
                return (body_out, False)
            return (self._union(body_out, else_out), False)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            widened = self._union(states, self._assigned_members(stmt))
            self._block([*stmt.body, *stmt.orelse], widened)
            return (widened, False)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._block(stmt.body, states)
        if isinstance(stmt, ast.Try):
            widened = self._union(states, self._assigned_members(stmt))
            body_out, _ = self._block(stmt.body, states)
            out = body_out
            for handler in stmt.handlers:
                handler_out, _ = self._block(handler.body, widened)
                out = self._union(out, handler_out)
            out2, _ = self._block([*stmt.orelse, *stmt.finalbody], out)
            return (out2, False)
        if isinstance(stmt, ast.Match):
            case_union: Optional[States] = frozenset()
            for case in stmt.cases:
                case_out, case_term = self._block(case.body, states)
                if not case_term:
                    case_union = self._union(case_union, case_out)
            return (self._union(case_union, states), False)
        return (states, False)

    def _assigned_members(self, stmt: ast.stmt) -> States:
        """Members assigned to the state attr anywhere inside ``stmt``."""
        out: set[str] = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if self._is_state_attr(target):
                        member = self.machine.member_of(self.fn, node.value)
                        if member is None:
                            return self.machine.members
                        out.add(member)
        return frozenset(out)

    @staticmethod
    def _union(a: Optional[States], b: Optional[States]) -> Optional[States]:
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    # ----------------------------------------------------- transition check

    def _check_assignment(
        self, stmt: ast.Assign, states: Optional[States], member: str
    ) -> States:
        enum_name = self.machine.enum.name
        table = self.machine.table
        if states is None:
            # Constructor: the object has no prior state.
            if member not in table.initial:
                self._report(
                    stmt,
                    f"{enum_name}.{member} is not a declared initial state "
                    f"(expected one of: {', '.join(sorted(table.initial))})",
                    f"init:{member}",
                )
            return frozenset({member})
        for source in sorted(states):
            allowed, methods = table.allowed_in(source, member)
            if not allowed:
                self._report(
                    stmt,
                    f"illegal {enum_name} transition {source} -> {member} "
                    f"in {self.fn.display}",
                    f"{source}->{member}",
                )
            elif methods is not None and self.fn.name not in methods:
                self._report(
                    stmt,
                    f"{enum_name} transition {source} -> {member} is only "
                    f"allowed in {', '.join(sorted(methods))} "
                    f"(found in {self.fn.name})",
                    f"{source}->{member}",
                )
        return frozenset({member})

    # --------------------------------------------------- guard constraints

    def _constrain(self, test: ast.expr, states: Optional[States]) -> Constraint:
        if states is None:
            return None
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._constrain(test.operand, states)
            if inner is None:
                return None
            return (inner[1], inner[0])
        if isinstance(test, ast.BoolOp):
            parts = [self._constrain(value, states) for value in test.values]
            known = [p for p in parts if p is not None]
            if not known:
                return None
            if isinstance(test.op, ast.And):
                true_states = states
                for part in known:
                    true_states = true_states & part[0]
                if len(known) == len(parts):
                    false_states: States = frozenset()
                    for part in known:
                        false_states = false_states | part[1]
                else:
                    false_states = states
                return (true_states, false_states)
            # Or: only exact when every disjunct constrains the attribute.
            if len(known) != len(parts):
                return None
            true_states = frozenset()
            false_states = states
            for part in known:
                true_states = true_states | part[0]
                false_states = false_states & part[1]
            return (true_states, false_states)
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return self._constrain_compare(test, states)
        if isinstance(test, ast.Attribute):
            return self._constrain_property(test, states)
        return None

    def _constrain_compare(self, test: ast.Compare, states: States) -> Constraint:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if not self._is_state_attr(left):
            # Allow the reversed spelling ``Enum.MEMBER == self._state``.
            if self._is_state_attr(right) and isinstance(op, (ast.Eq, ast.NotEq, ast.Is, ast.IsNot)):
                left, right = right, left
            else:
                return None
        if isinstance(op, (ast.Eq, ast.Is, ast.NotEq, ast.IsNot)):
            member = self.machine.member_of(self.fn, right)
            if member is None:
                return None
            hit = states & frozenset({member})
            miss = states - frozenset({member})
            if isinstance(op, (ast.Eq, ast.Is)):
                return (hit, miss)
            return (miss, hit)
        if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
            right, (ast.Tuple, ast.List, ast.Set)
        ):
            members: set[str] = set()
            for element in right.elts:
                member = self.machine.member_of(self.fn, element)
                if member is None:
                    return None
                members.add(member)
            hit = states & frozenset(members)
            miss = states - frozenset(members)
            if isinstance(op, ast.In):
                return (hit, miss)
            return (miss, hit)
        return None

    def _constrain_property(self, test: ast.Attribute, states: States) -> Constraint:
        """Inline a single-``return`` property used as a guard (``is_available``)."""
        if attr_chain(test) != ("self", test.attr) or self.fn.cls is None:
            return None
        prop = self.graph.find_property(self.fn.cls, test.attr)
        if prop is None:
            return None
        body = prop.node.body
        stmts = [s for s in body if not isinstance(s, (ast.Expr,))]  # skip docstring
        if len(stmts) != 1 or not isinstance(stmts[0], ast.Return) or stmts[0].value is None:
            return None
        return self._constrain(stmts[0].value, states)


@register
class LifecycleTransitionPass(AnalysisPass):
    code = "THRA104"
    name = "lifecycle"
    summary = "state-machine assignment outside the declared transition table"

    def run(self, graph: ProgramGraph, config: AnalyzeConfig) -> List[Finding]:
        findings: list[Finding] = []
        for table in config.transition_tables:
            enum = next(
                (c for c in graph.classes.values() if c.name == table.enum_name), None
            )
            if enum is None:
                continue
            machine = _StateMachine(graph, table, enum)
            owners = self._state_attrs(graph, machine)
            for qualname in sorted(graph.functions):
                fn = graph.functions[qualname]
                self._check_function(machine, fn, owners, findings)
        return findings

    def _state_attrs(
        self, graph: ProgramGraph, machine: _StateMachine
    ) -> set[tuple[str, str]]:
        """(owning class qualname, attr) pairs assigned this enum via ``self``."""
        owners: set[tuple[str, str]] = set()
        for fn in graph.functions.values():
            if fn.cls is None:
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    chain = attr_chain(target)
                    if len(chain) == 2 and chain[0] == "self":
                        if machine.member_of(fn, node.value) is not None:
                            owners.add((fn.cls, chain[1]))
        return owners

    def _check_function(
        self,
        machine: _StateMachine,
        fn: FunctionInfo,
        owners: set[tuple[str, str]],
        findings: list[Finding],
    ) -> None:
        graph = machine.graph
        state_attrs = {attr for _cls, attr in owners}
        # Non-self assignments of a state attribute: always a finding.
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                chain = attr_chain(target)
                if (
                    isinstance(target, ast.Attribute)
                    and chain[:1] != ("self",)
                    and target.attr in state_attrs
                    and machine.member_of(fn, node.value) is not None
                ):
                    findings.append(
                        finding_at(
                            code=self.code,
                            message=(
                                f"{machine.enum.name} attribute .{target.attr} assigned "
                                f"outside its owning class (in {fn.display}); lifecycle "
                                "transitions belong to the owner's methods"
                            ),
                            path=fn.path,
                            root=graph.root,
                            scope=fn.display,
                            label=f"external:{target.attr}",
                            node=node,
                        )
                    )
        # Self assignments: interpret the whole method per owned attribute.
        if fn.cls is None:
            return
        own_mro = {c.qualname for c in graph.mro(fn.cls)}
        for cls_qualname, attr in sorted(owners):
            if cls_qualname not in own_mro:
                continue
            assigns_here = any(
                isinstance(node, ast.Assign)
                and any(
                    self_target
                    for self_target in node.targets
                    if attr_chain(self_target) == ("self", attr)
                )
                for node in ast.walk(fn.node)
            )
            if not assigns_here:
                continue
            _MethodChecker(machine, fn, attr, self.code, findings).check()
