"""THRA101 — determinism taint: wall-clock / ad-hoc RNG reachable from replay.

THR001 (the per-file lint rule) bans wall-clock and ad-hoc randomness
*inside* the replay layers but deliberately leaves ``packing`` and
``analysis`` free to time their own solvers.  That carve-out is exactly the
blind spot this pass closes: a ``perf_counter`` call is legal where it
stands, yet becomes a determinism leak the moment a replay entry point can
reach it through the call graph.  The pass BFSes from the configured entry
points and reports every nondeterminism *source* call in a reachable
function, together with the call chain that reaches it.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..config import AnalyzeConfig
from ..findings import Finding, finding_at
from ..graph import ProgramGraph
from . import AnalysisPass, register

__all__ = ["DeterminismTaintPass", "classify_source"]

#: Exact dotted chains that read the host wall clock.
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "datetime", "now"),
    ("datetime", "datetime", "utcnow"),
    ("datetime", "date", "today"),
}

#: numpy global-state seeding — order-dependent across components.
_NUMPY_GLOBAL = {("numpy", "random", "seed")}


def classify_source(chain: tuple[str, ...], call: ast.Call) -> Optional[str]:
    """The source label when an external call is a nondeterminism source."""
    if chain in _WALL_CLOCK or chain in _NUMPY_GLOBAL:
        return ".".join(chain)
    # Any use of the stdlib ``random`` module draws from interpreter-global
    # state instead of a named RngFactory sub-stream.
    if chain and chain[0] == "random":
        return ".".join(chain)
    if chain == ("numpy", "random", "default_rng") and not call.args and not call.keywords:
        return "unseeded numpy.random.default_rng"
    return None


@register
class DeterminismTaintPass(AnalysisPass):
    code = "THRA101"
    name = "determinism"
    summary = "wall-clock/ad-hoc-RNG source reachable from a replay entry point"

    def run(self, graph: ProgramGraph, config: AnalyzeConfig) -> List[Finding]:
        prefixes = [f"{graph.package}.{p}" for p in config.entry_prefixes]
        roots = graph.functions_with_prefix(prefixes)
        paths = graph.reachable(roots)
        findings: list[Finding] = []
        for qualname in sorted(paths):
            fn = graph.functions[qualname]
            for call, resolution in graph.calls_of(qualname):
                if not resolution.external:
                    continue
                label = classify_source(resolution.external, call)
                if label is None:
                    continue
                chain = " -> ".join(
                    graph.functions[hop].display for hop in paths[qualname]
                )
                findings.append(
                    finding_at(
                        code=self.code,
                        message=(
                            f"{label} is reachable from replay entry point "
                            f"{graph.functions[paths[qualname][0]].display}"
                        ),
                        path=fn.path,
                        root=graph.root,
                        scope=fn.display,
                        label=label,
                        node=call,
                        detail=f"via {chain} -> {label}",
                    )
                )
        return findings
