"""The interprocedural passes behind ``thrifty-analyze``.

Mirrors the lint rule registry: each pass has a ``code`` (``THRA101``…), a
``name``, a one-line ``summary``, and a ``run`` method taking the program
graph plus the :class:`~repro.tools.analyze.config.AnalyzeConfig`.
"""

from __future__ import annotations

from typing import Iterable, List

from ....errors import AnalysisError
from ..config import AnalyzeConfig
from ..findings import Finding
from ..graph import ProgramGraph

__all__ = [
    "AnalysisPass",
    "register",
    "all_passes",
    "pass_codes",
    "select_passes",
]


class AnalysisPass:
    """Base class for analyzer passes; subclasses set ``code``/``name``/``summary``."""

    code: str = ""
    name: str = ""
    summary: str = ""

    def run(self, graph: ProgramGraph, config: AnalyzeConfig) -> List[Finding]:
        """Return every finding of this pass over ``graph``."""
        raise NotImplementedError


_REGISTRY: dict[str, type[AnalysisPass]] = {}


def register(cls: type[AnalysisPass]) -> type[AnalysisPass]:
    """Class decorator adding a pass to the registry (keyed by its code)."""
    if not cls.code:
        raise AnalysisError(f"pass {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise AnalysisError(f"duplicate pass code {cls.code!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_passes() -> list[AnalysisPass]:
    """Fresh instances of every registered pass, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def pass_codes() -> list[str]:
    """Sorted registered pass codes."""
    return sorted(_REGISTRY)


def select_passes(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[AnalysisPass]:
    """Resolve ``--select``/``--ignore`` against the registry."""
    codes = set(select) if select else set(pass_codes())
    unknown = codes - set(pass_codes())
    if unknown:
        raise AnalysisError(f"unknown pass code(s): {', '.join(sorted(unknown))}")
    if ignore:
        bad = set(ignore) - set(pass_codes())
        if bad:
            raise AnalysisError(f"unknown pass code(s): {', '.join(sorted(bad))}")
        codes -= set(ignore)
    return [_REGISTRY[code]() for code in sorted(codes)]


# Importing the pass modules registers them (mirrors lint's rules import).
from . import api_surface as _api_surface  # noqa: E402,F401
from . import determinism as _determinism  # noqa: E402,F401
from . import exceptions as _exceptions  # noqa: E402,F401
from . import lifecycle as _lifecycle  # noqa: E402,F401
