"""The checked-in analyzer baseline (gradual adoption).

Interprocedural findings often point at *designed* behaviour — the
``repro.obs`` profiler reads ``perf_counter`` on purpose; its readings are
measurement metadata that never feed simulated state.  Such findings are
carried in a baseline file instead of being fixed, one per line:

    <fingerprint> | <one-line justification>

The justification is **mandatory**: a fingerprint with no explanation is a
parse error, so every accepted finding records why it is acceptable.
Fingerprints are line-number free (``CODE::file::scope::label``), so the
baseline survives unrelated edits to the file.  Entries that no longer
match any finding are reported as *stale* on stderr — they should be
deleted, but do not fail the run.
"""

from __future__ import annotations

from pathlib import Path

from ...errors import AnalysisError
from .findings import Finding

__all__ = [
    "load_baseline",
    "apply_baseline",
    "stale_entries",
    "render_baseline",
    "write_baseline",
]

_SEPARATOR = "|"


def load_baseline(path: Path) -> dict[str, str]:
    """Parse a baseline file into ``{fingerprint: justification}``."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    out: dict[str, str] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fingerprint, separator, justification = line.partition(_SEPARATOR)
        fingerprint = fingerprint.strip()
        justification = justification.strip()
        if not separator or not justification:
            raise AnalysisError(
                f"{path}:{number}: baseline entries are "
                f"'<fingerprint> {_SEPARATOR} <justification>'; "
                "the justification is mandatory"
            )
        if not fingerprint:
            raise AnalysisError(f"{path}:{number}: empty fingerprint")
        if fingerprint in out:
            raise AnalysisError(f"{path}:{number}: duplicate fingerprint {fingerprint!r}")
        out[fingerprint] = justification
    return out


def apply_baseline(
    findings: list[Finding], baseline: dict[str, str]
) -> tuple[list[Finding], set[str]]:
    """Split findings into (new, matched-fingerprints)."""
    kept: list[Finding] = []
    used: set[str] = set()
    for finding in findings:
        if finding.fingerprint in baseline:
            used.add(finding.fingerprint)
        else:
            kept.append(finding)
    return kept, used


def stale_entries(baseline: dict[str, str], used: set[str]) -> list[str]:
    """Baselined fingerprints that matched no finding this run."""
    return sorted(set(baseline) - used)


def render_baseline(findings: list[Finding], existing: dict[str, str]) -> str:
    """Serialize findings as a baseline, keeping existing justifications.

    New entries get a ``TODO`` justification the loader will accept but a
    reviewer should replace before merging.
    """
    lines = [
        "# thrifty-analyze baseline: accepted findings, one per line as",
        "#   <fingerprint> | <one-line justification>",
        "# Regenerate with: thrifty-analyze --write-baseline",
    ]
    seen: set[str] = set()
    for finding in sorted(findings, key=lambda f: f.fingerprint):
        if finding.fingerprint in seen:
            continue
        seen.add(finding.fingerprint)
        justification = existing.get(finding.fingerprint, "TODO: justify this finding")
        lines.append(f"{finding.fingerprint} {_SEPARATOR} {justification}")
    return "\n".join(lines) + "\n"


def write_baseline(path: Path, findings: list[Finding], existing: dict[str, str]) -> None:
    path.write_text(render_baseline(findings, existing), encoding="utf-8")
