"""Configuration for the ``thrifty-analyze`` passes.

The passes themselves are generic graph algorithms; everything Thrifty-
specific — which functions count as replay entry points, which enums are
lifecycle state machines and what their legal transitions are — lives here
as data, so the fixture tests can run the same passes against synthetic
packages with their own tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = [
    "TransitionTable",
    "AnalyzeConfig",
    "DEFAULT_ENTRY_PREFIXES",
    "default_transition_tables",
    "default_config",
]

#: Replay entry points for the determinism pass, as qualname prefixes
#: *relative to the analyzed package* ("core.service.ThriftyService."
#: matches ``repro.core.service.ThriftyService.deploy`` when the package is
#: ``repro``).  Anything transitively callable from these executes during a
#: replay and must not read wall-clock time or ad-hoc randomness.
DEFAULT_ENTRY_PREFIXES: tuple[str, ...] = (
    "core.service.ThriftyService.",
    "core.runtime.GroupRuntime.",
    "core.routing.",
    "core.monitor.",
    "cluster.health.",
)


@dataclass(frozen=True)
class TransitionTable:
    """Declared legal transitions of one lifecycle enum.

    ``transitions`` maps ``(from_member, to_member)`` to the set of method
    names allowed to perform that transition, or ``None`` for "any method".
    A pair absent from the map is illegal everywhere.  Self-loops
    (``X -> X``) are always legal and never checked.
    """

    enum_name: str
    initial: frozenset[str]
    transitions: dict[tuple[str, str], Optional[frozenset[str]]]

    def allowed_in(self, source: str, target: str) -> tuple[bool, Optional[frozenset[str]]]:
        """Whether ``source -> target`` is ever legal, and where."""
        if source == target:
            return (True, None)
        if (source, target) not in self.transitions:
            return (False, None)
        return (True, self.transitions[(source, target)])


def default_transition_tables() -> tuple[TransitionTable, ...]:
    """The PR 3 health state machines (see docs/FAULT_TOLERANCE.md).

    ``InstanceState``: an instance provisions, comes up READY (or DEGRADED,
    if nodes failed mid-provisioning), degrades and recovers through the
    token-guarded node-replacement path, and only
    ``complete_node_replacement`` may bring a DEGRADED/DOWN instance back
    to READY.  DOWN is absorbing with respect to further node failures —
    there is deliberately no DOWN -> DEGRADED edge.

    ``NodeState``: HIBERNATED -> STARTING -> RUNNING, failure from either
    active state, and every path back to the pool ends in HIBERNATED.
    """
    any_method: Optional[frozenset[str]] = None
    instance = TransitionTable(
        enum_name="InstanceState",
        initial=frozenset({"PROVISIONING"}),
        transitions={
            ("PROVISIONING", "READY"): frozenset({"mark_ready"}),
            ("PROVISIONING", "DEGRADED"): frozenset({"mark_ready"}),
            ("PROVISIONING", "DOWN"): any_method,
            ("PROVISIONING", "RETIRED"): any_method,
            ("READY", "DEGRADED"): any_method,
            ("READY", "DOWN"): any_method,
            ("READY", "RETIRED"): any_method,
            ("DEGRADED", "READY"): frozenset({"complete_node_replacement"}),
            ("DEGRADED", "DOWN"): any_method,
            ("DEGRADED", "RETIRED"): any_method,
            ("DOWN", "READY"): frozenset({"complete_node_replacement"}),
            ("DOWN", "RETIRED"): any_method,
        },
    )
    node = TransitionTable(
        enum_name="NodeState",
        initial=frozenset({"HIBERNATED"}),
        transitions={
            ("HIBERNATED", "STARTING"): any_method,
            ("STARTING", "RUNNING"): any_method,
            ("STARTING", "FAILED"): any_method,
            ("STARTING", "HIBERNATED"): any_method,
            ("RUNNING", "FAILED"): any_method,
            ("RUNNING", "HIBERNATED"): any_method,
            ("FAILED", "HIBERNATED"): any_method,
        },
    )
    return (instance, node)


@dataclass
class AnalyzeConfig:
    """Everything the passes need beyond the program graph itself."""

    entry_prefixes: tuple[str, ...] = DEFAULT_ENTRY_PREFIXES
    transition_tables: tuple[TransitionTable, ...] = field(
        default_factory=default_transition_tables
    )
    #: Document the API-surface pass checks ``__all__`` exports against;
    #: ``None`` skips the pass (no such document in fixture packages).
    api_doc: Optional[Path] = None


def default_config() -> AnalyzeConfig:
    return AnalyzeConfig()
