"""Analyzer findings: lint :class:`Violation` plus a stable fingerprint.

The fingerprint identifies *what* the finding is about — pass code, file
(package-relative), containing scope, and a pass-specific detail label —
without the line number, so a finding stays baselined while the file above
it is edited.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath
from dataclasses import dataclass
from typing import Optional

from ..lint.registry import Violation

__all__ = ["Finding", "make_fingerprint", "relative_path"]


@dataclass(frozen=True)
class Finding(Violation):
    """One interprocedural finding, identified by a line-independent fingerprint."""

    fingerprint: str = ""
    #: Optional explanation of *why* (e.g. the call chain for a taint).
    detail: str = ""

    def as_dict(self) -> dict[str, object]:
        out = super().as_dict()
        out["fingerprint"] = self.fingerprint
        if self.detail:
            out["detail"] = self.detail
        return out

    def format_text(self) -> str:
        base = super().format_text()
        if self.detail:
            return f"{base}\n    {self.detail}"
        return base


def relative_path(path: str, root: Path) -> str:
    """``path`` relative to the analyzed package's parent, POSIX-style.

    ``src/repro/obs/profiling.py`` with root ``src/repro`` becomes
    ``repro/obs/profiling.py`` — stable no matter where the checkout lives
    or whether the CLI was given ``src`` or ``src/repro``.
    """
    resolved = Path(path).resolve()
    try:
        relative = resolved.relative_to(root.resolve().parent)
    except ValueError:
        relative = Path(path)
    return PurePosixPath(relative).as_posix()


def make_fingerprint(code: str, rel_path: str, scope: str, label: str) -> str:
    """``CODE::file::scope::label`` — the baseline key for one finding."""
    return f"{code}::{rel_path}::{scope}::{label}"


def finding_at(
    *,
    code: str,
    message: str,
    path: str,
    root: Path,
    scope: str,
    label: str,
    node: Optional[ast.AST] = None,
    line: int = 1,
    col: int = 1,
    detail: str = "",
) -> Finding:
    """Build a :class:`Finding`, anchored at ``node`` when one is given."""
    if node is not None:
        line = getattr(node, "lineno", line)
        col = getattr(node, "col_offset", col - 1) + 1
    rel = relative_path(path, root)
    return Finding(
        code=code,
        message=message,
        path=path,
        line=line,
        col=col,
        fingerprint=make_fingerprint(code, rel, scope, label),
        detail=detail,
    )


__all__.append("finding_at")
