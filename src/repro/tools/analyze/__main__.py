"""``python -m repro.tools.analyze`` — delegate to the CLI."""

from __future__ import annotations

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
