"""``thrifty-analyze`` — whole-program analysis for the reproduction.

Where :mod:`repro.tools.lint` checks one file at a time, this package
parses all of ``src/repro`` into an import graph and a best-effort call
graph and runs *interprocedural* passes over it:

* **THRA101** determinism taint — wall-clock / ad-hoc-RNG sources
  transitively reachable from the replay entry points;
* **THRA102** exception escape — builtin exceptions that can surface
  through the public API;
* **THRA103** dead handlers — ``except SomeReproError`` clauses their try
  bodies can never satisfy;
* **THRA104** lifecycle transitions — every ``InstanceState``/``NodeState``
  assignment checked against the declared transition tables;
* **THRA105** API-surface drift — ``__all__`` exports missing from
  ``docs/API.md``.

Run as ``python -m repro.tools.analyze src/`` or via the
``thrifty-analyze`` console script; see ``docs/STATIC_ANALYSIS.md`` for the
pass catalogue and the baseline workflow.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, stale_entries, write_baseline
from .config import (
    DEFAULT_ENTRY_PREFIXES,
    AnalyzeConfig,
    TransitionTable,
    default_config,
    default_transition_tables,
)
from .findings import Finding, make_fingerprint
from .graph import ProgramGraph, build_program, find_package_root
from .passes import AnalysisPass, all_passes, pass_codes, select_passes
from .runner import analyze_package, main, run_passes

__all__ = [
    "AnalysisPass",
    "AnalyzeConfig",
    "DEFAULT_ENTRY_PREFIXES",
    "Finding",
    "ProgramGraph",
    "TransitionTable",
    "all_passes",
    "analyze_package",
    "apply_baseline",
    "build_program",
    "default_config",
    "default_transition_tables",
    "find_package_root",
    "load_baseline",
    "main",
    "make_fingerprint",
    "pass_codes",
    "run_passes",
    "select_passes",
    "stale_entries",
    "write_baseline",
]
