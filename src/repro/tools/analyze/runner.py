"""Program loading, pass execution, and the ``thrifty-analyze`` CLI."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ...errors import AnalysisError
from ..lint.report import write_report
from ..lint.suppress import ALL_CODES, line_suppressions
from .baseline import apply_baseline, load_baseline, stale_entries, write_baseline
from .config import AnalyzeConfig, default_config
from .findings import Finding
from .graph import ProgramGraph, build_program, find_package_root
from .passes import AnalysisPass, all_passes, select_passes

__all__ = ["run_passes", "analyze_package", "main"]

_DEFAULT_BASELINE = "thrifty-analyze-baseline.txt"
_DEFAULT_API_DOC = "docs/API.md"


def run_passes(
    graph: ProgramGraph,
    config: AnalyzeConfig,
    passes: Sequence[AnalysisPass] | None = None,
) -> list[Finding]:
    """Run the passes over a built program; deduped, suppression-filtered, sorted."""
    raw: list[Finding] = []
    for analysis_pass in passes if passes is not None else all_passes():
        raw.extend(analysis_pass.run(graph, config))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.fingerprint))
    suppressions_by_path: dict[str, dict[int, frozenset[str]]] = {}
    for module in graph.modules.values():
        suppressions_by_path[module.path] = line_suppressions(module.source)
    seen: set[str] = set()
    out: list[Finding] = []
    for finding in raw:
        if finding.fingerprint in seen:
            continue
        seen.add(finding.fingerprint)
        codes = suppressions_by_path.get(finding.path, {}).get(finding.line, frozenset())
        if ALL_CODES in codes or finding.code in codes:
            continue
        out.append(finding)
    return out


def analyze_package(
    package_dir: str | Path,
    config: AnalyzeConfig | None = None,
    passes: Sequence[AnalysisPass] | None = None,
) -> list[Finding]:
    """Build the program graph for ``package_dir`` and run the passes."""
    graph = build_program(package_dir)
    return run_passes(graph, config if config is not None else default_config(), passes)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="thrifty-analyze",
        description=(
            "Whole-program static analysis for the Thrifty reproduction: "
            "interprocedural determinism taint, exception flow, lifecycle "
            "transitions, and API-surface drift (passes THRA101..THRA105)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="package directory to analyze (or its direct parent, e.g. src/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated pass codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated pass codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=f"baseline file of accepted findings (default: {_DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit clean",
    )
    parser.add_argument(
        "--api-doc",
        metavar="PATH",
        help=(
            "API document the THRA105 drift pass checks __all__ exports "
            f"against (default: {_DEFAULT_API_DOC} if present, else the pass is skipped)"
        ),
    )
    parser.add_argument(
        "--entry",
        action="append",
        metavar="PREFIX",
        help=(
            "package-relative qualname prefix to use as a replay entry point "
            "for THRA101 (repeatable; overrides the built-in set)"
        ),
    )
    parser.add_argument(
        "--statistics", action="store_true", help="append per-code finding counts"
    )
    parser.add_argument(
        "--list-passes", action="store_true", help="print the registered passes and exit"
    )
    return parser


def _parse_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def _resolve_api_doc(raw: Optional[str]) -> Optional[Path]:
    if raw is not None:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"API document not found: {path}")
        return path
    default = Path(_DEFAULT_API_DOC)
    if default.exists():
        return default
    sys.stderr.write(
        f"thrifty-analyze: note: {_DEFAULT_API_DOC} not found, "
        "skipping the THRA105 api-surface pass\n"
    )
    return None


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (0 clean, 1 findings)."""
    parser = _build_parser()
    opts = parser.parse_args(argv)
    if opts.list_passes:
        for analysis_pass in all_passes():
            sys.stdout.write(f"{analysis_pass.code}  {analysis_pass.summary}\n")
        return 0
    try:
        passes = select_passes(_parse_codes(opts.select), _parse_codes(opts.ignore))
        config = default_config()
        if opts.entry:
            config.entry_prefixes = tuple(opts.entry)
        config.api_doc = _resolve_api_doc(opts.api_doc)
        package_dir = find_package_root(opts.paths)
        graph = build_program(package_dir)
        findings = run_passes(graph, config, passes)
        baseline_path = Path(opts.baseline) if opts.baseline else Path(_DEFAULT_BASELINE)
        baseline: dict[str, str] = {}
        if baseline_path.exists():
            baseline = load_baseline(baseline_path)
        elif opts.baseline and not opts.write_baseline:
            raise AnalysisError(f"baseline file not found: {baseline_path}")
        if opts.write_baseline:
            write_baseline(baseline_path, findings, baseline)
            sys.stdout.write(
                f"wrote {len({f.fingerprint for f in findings})} baseline "
                f"entr{'y' if len(findings) == 1 else 'ies'} to {baseline_path}\n"
            )
            return 0
        new_findings, used = apply_baseline(findings, baseline)
        for fingerprint in stale_entries(baseline, used):
            sys.stderr.write(
                f"thrifty-analyze: warning: stale baseline entry {fingerprint}\n"
            )
    except AnalysisError as exc:
        sys.stderr.write(f"thrifty-analyze: error: {exc}\n")
        return 2
    write_report(
        sys.stdout,
        list(new_findings),
        fmt=opts.format,
        files_checked=len(graph.modules),
        statistics=opts.statistics,
    )
    return 1 if new_findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
