"""Whole-program model for ``thrifty-analyze``.

The lint rules in :mod:`repro.tools.lint` see one file at a time; the
analyzer passes need to reason *across* files — "is this wall-clock read
reachable from the replay entry points?" is a property of the call graph,
not of any single module.  This module parses every ``.py`` file under a
package root into:

* :class:`ModuleInfo` — per-module AST, import table, top-level functions,
  classes, and module-level constants whose constructing class is known;
* :class:`ClassInfo` — methods, properties, resolved base classes, and the
  best-effort types of ``self.*`` attributes assigned in ``__init__``;
* :class:`FunctionInfo` — one entry per function *or* method; bodies of
  nested functions and lambdas are attributed to their enclosing function
  (a closure scheduled on the simulator still executes the enclosing
  function's logic);
* :class:`ProgramGraph` — the whole program, with call resolution
  (:meth:`ProgramGraph.resolve_call`) and reachability
  (:meth:`ProgramGraph.reachable`).

Resolution is deliberately *best-effort*: a call that cannot be resolved is
reported as such (``CallResolution.opaque``) so each pass can choose to be
conservative about it rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ...errors import AnalysisError

__all__ = [
    "ModuleInfo",
    "ClassInfo",
    "FunctionInfo",
    "CallResolution",
    "ProgramGraph",
    "build_program",
    "attr_chain",
]

_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".mypy_cache", ".ruff_cache"}

#: A ``.method()`` call with no typed receiver is linked to every class
#: defining that method — but only when few enough classes do for the link
#: to carry signal.
_FALLBACK_MAX_IMPLS = 3

#: Constructor calls producing builtin containers; attributes assigned from
#: these are typed "builtin" so later ``.get()``/``.items()`` calls on them
#: are not mistaken for internal methods.
_BUILTIN_FACTORIES = frozenset({"dict", "list", "set", "tuple", "frozenset", "bytearray", "str"})


def attr_chain(node: ast.AST) -> tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``; empty for non-pure chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@dataclass
class FunctionInfo:
    """One function or method; nested defs belong to their enclosing function."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: Optional[str] = None
    is_property: bool = False
    #: Parameter name -> internal class qualnames its annotation names.
    param_types: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def display(self) -> str:
        """Short human name: ``Class.method`` or ``module.function``."""
        if self.cls is not None:
            return f"{self.cls.rsplit('.', 1)[-1]}.{self.name}"
        return f"{self.module.rsplit('.', 1)[-1]}.{self.name}"


@dataclass
class ClassInfo:
    """One class: methods, properties, bases, and typed ``self.*`` attributes."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    #: Base-class qualnames (internal) or bare names (external/builtin).
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    properties: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> possible internal class qualnames (or ``{"<builtin>"}``).
    attr_types: dict[str, frozenset[str]] = field(default_factory=dict)
    #: ``self.<attr>`` holding a callable -> function qualnames it may be.
    callable_attrs: dict[str, frozenset[str]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    name: str
    path: str
    source: str
    tree: ast.Module
    is_package: bool = False
    #: ``import x.y as z`` -> ``{"z": "x.y"}`` (and ``{"x": "x"}`` for plain imports).
    imports: dict[str, str] = field(default_factory=dict)
    #: ``from m import a as b`` -> ``{"b": ("m", "a")}`` (module resolved absolute).
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level ``NAME = ClassName(...)`` constants -> class qualname.
    const_types: dict[str, str] = field(default_factory=dict)
    #: Module-level dict literals mapping to functions/classes (dispatch
    #: tables like ``GROUPING_ALGORITHMS``) -> resolved (kind, qualname)s.
    dispatch_tables: dict[str, tuple[tuple[str, str], ...]] = field(default_factory=dict)
    #: Names listed in ``__all__`` with the line each entry sits on.
    exports: list[tuple[str, int]] = field(default_factory=list)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


@dataclass(frozen=True)
class CallResolution:
    """Outcome of resolving one ``ast.Call``.

    ``targets`` holds internal function qualnames the call may dispatch to.
    ``external`` is the normalized dotted chain for calls into code outside
    the analyzed package (``("time", "perf_counter")``).  ``opaque`` marks
    calls that may reach internal code the resolver cannot name (callbacks,
    untyped receivers with many candidate implementations) — passes must
    treat those pessimistically.
    """

    targets: tuple[str, ...] = ()
    external: tuple[str, ...] = ()
    opaque: bool = False


class ProgramGraph:
    """Every module of one package, with call resolution over the whole set."""

    def __init__(self, package: str, root: Path) -> None:
        self.package = package
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._properties_by_name: dict[str, list[FunctionInfo]] = {}
        self._subclasses: dict[str, list[str]] = {}
        self._call_cache: dict[str, list[tuple[ast.Call, CallResolution]]] = {}

    # ------------------------------------------------------------------ build

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        for fn in info.functions.values():
            self.functions[fn.qualname] = fn
        for cls in info.classes.values():
            self.classes[cls.qualname] = cls
            for fn in cls.methods.values():
                self.functions[fn.qualname] = fn
                self._methods_by_name.setdefault(fn.name, []).append(fn)
            for fn in cls.properties.values():
                self.functions[fn.qualname] = fn
                self._properties_by_name.setdefault(fn.name, []).append(fn)

    def finalize(self) -> None:
        """Index subclass edges once every module is loaded."""
        for cls in self.classes.values():
            for base in cls.bases:
                if base in self.classes:
                    self._subclasses.setdefault(base, []).append(cls.qualname)

    # ------------------------------------------------------------- hierarchy

    def mro(self, qualname: str) -> list[ClassInfo]:
        """The class and its internal ancestors, nearest first (best-effort)."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            cls = self.classes[current]
            out.append(cls)
            stack.extend(cls.bases)
        return out

    def subclasses(self, qualname: str) -> list[str]:
        """All transitive internal subclasses of ``qualname``."""
        out: list[str] = []
        stack = list(self._subclasses.get(qualname, ()))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.append(current)
            stack.extend(self._subclasses.get(current, ()))
        return out

    def find_method(self, cls_qualname: str, name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` through the class's ancestors, nearest first."""
        for cls in self.mro(cls_qualname):
            if name in cls.methods:
                return cls.methods[name]
        return None

    def find_property(self, cls_qualname: str, name: str) -> Optional[FunctionInfo]:
        for cls in self.mro(cls_qualname):
            if name in cls.properties:
                return cls.properties[name]
        return None

    def methods_named(self, name: str) -> list[FunctionInfo]:
        return list(self._methods_by_name.get(name, ()))

    def properties_named(self, name: str) -> list[FunctionInfo]:
        return list(self._properties_by_name.get(name, ()))

    # ------------------------------------------------------------ resolution

    def resolve_scope_name(self, module: ModuleInfo, name: str) -> Optional[tuple[str, str]]:
        """Resolve a bare name in module scope to ``(kind, qualname)``.

        Kinds: ``"function"``, ``"class"``, ``"module"``, ``"const"``.
        Follows one level of re-export through ``from m import name``.
        """
        if name in module.functions:
            return ("function", module.functions[name].qualname)
        if name in module.classes:
            return ("class", module.classes[name].qualname)
        if name in module.const_types:
            return ("const", module.const_types[name])
        if name in module.imports:
            return ("module", module.imports[name])
        if name in module.from_imports:
            source, orig = module.from_imports[name]
            dotted = f"{source}.{orig}"
            if dotted in self.modules:
                return ("module", dotted)
            target = self.modules.get(source)
            if target is not None:
                resolved = self.resolve_scope_name(target, orig)
                if resolved is not None:
                    return resolved
                return None
            return ("external", f"{source}.{orig}")
        return None

    def _normalize_chain(self, module: ModuleInfo, chain: tuple[str, ...]) -> tuple[str, ...]:
        """Rewrite an attribute chain's head through the module's import table."""
        head = chain[0]
        if head in module.imports:
            return tuple(module.imports[head].split(".")) + chain[1:]
        if head in module.from_imports:
            source, orig = module.from_imports[head]
            dotted = f"{source}.{orig}"
            if dotted in self.modules or not source.startswith(self.package):
                return tuple(dotted.split(".")) + chain[1:]
        return chain

    def _receiver_types(self, fn: FunctionInfo, expr: ast.expr) -> frozenset[str]:
        """Internal class qualnames an expression may evaluate to (best-effort)."""
        chain = attr_chain(expr)
        module = self.modules[fn.module]
        if len(chain) == 1:
            name = chain[0]
            if name in fn.param_types:
                return fn.param_types[name]
            resolved = self.resolve_scope_name(module, name)
            if resolved is not None and resolved[0] == "const":
                return frozenset({resolved[1]})
            return frozenset()
        if len(chain) == 2 and chain[0] == "self" and fn.cls is not None:
            for cls in self.mro(fn.cls):
                if chain[1] in cls.attr_types:
                    return cls.attr_types[chain[1]]
            return frozenset()
        if len(chain) == 2:
            resolved = self.resolve_scope_name(module, chain[0])
            if resolved is not None and resolved[0] == "module":
                target = self.modules.get(resolved[1])
                if target is not None and chain[1] in target.const_types:
                    return frozenset({target.const_types[chain[1]]})
        return frozenset()

    def _entry_targets(self, entries: Sequence[tuple[str, str]]) -> list[str]:
        """Call targets for resolved (kind, qualname) dispatch entries."""
        out: list[str] = []
        for kind, qualname in entries:
            if kind == "function":
                if qualname in self.functions and qualname not in out:
                    out.append(qualname)
            elif kind == "class":
                for name in ("__init__", "__post_init__"):
                    found = self.find_method(qualname, name)
                    if found is not None and found.qualname not in out:
                        out.append(found.qualname)
        return out

    def dispatch_entries(self, module: ModuleInfo, name: str) -> tuple[tuple[str, str], ...]:
        """A module-level dispatch table's entries, following from-imports."""
        if name in module.dispatch_tables:
            return module.dispatch_tables[name]
        if name in module.from_imports:
            source, orig = module.from_imports[name]
            target = self.modules.get(source)
            if target is not None and orig in target.dispatch_tables:
                return target.dispatch_tables[orig]
        return ()

    def _method_targets(self, cls_qualname: str, name: str) -> list[str]:
        """A method plus every subclass override of it."""
        out: list[str] = []
        found = self.find_method(cls_qualname, name)
        if found is not None:
            out.append(found.qualname)
        for sub in self.subclasses(cls_qualname):
            override = self.classes[sub].methods.get(name)
            if override is not None and override.qualname not in out:
                out.append(override.qualname)
        return out

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> CallResolution:
        """Resolve one call site inside ``fn`` (see :class:`CallResolution`)."""
        func = call.func
        module = self.modules[fn.module]
        if isinstance(func, ast.Name):
            resolved = self.resolve_scope_name(module, func.id)
            if resolved is None:
                # Builtin (len, sorted, ...) or a local variable / parameter.
                # A parameter that holds a callable is an opaque callback.
                if func.id in fn.param_types or self._is_local_name(fn, func.id):
                    return CallResolution(opaque=True)
                return CallResolution(external=(func.id,))
            kind, qualname = resolved
            if kind == "function":
                return CallResolution(targets=(qualname,))
            if kind == "class":
                init = self.find_method(qualname, "__init__")
                post = self.find_method(qualname, "__post_init__")
                targets = tuple(
                    f.qualname for f in (init, post) if f is not None
                )
                return CallResolution(targets=targets)
            if kind in ("module", "external"):
                return CallResolution(external=tuple(qualname.split(".")))
            return CallResolution(opaque=True)
        if isinstance(func, ast.Attribute):
            # super().__init__(...) and friends.
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and fn.cls is not None
            ):
                cls = self.classes.get(fn.cls)
                if cls is not None:
                    for base in cls.bases:
                        found = self.find_method(base, func.attr)
                        if found is not None:
                            return CallResolution(targets=(found.qualname,))
                return CallResolution(opaque=True)
            chain = attr_chain(func)
            # ClassName.method(...) — classmethods/staticmethods/unbound calls.
            if len(chain) == 2 and chain[0] != "self":
                resolved_head = self.resolve_scope_name(module, chain[0])
                if resolved_head is not None and resolved_head[0] == "class":
                    class_targets = self._method_targets(resolved_head[1], chain[1])
                    if class_targets:
                        return CallResolution(targets=tuple(class_targets))
            if chain:
                normalized = self._normalize_chain(module, chain)
                # Dotted path rooted at a module: internal function or external.
                if len(normalized) >= 2:
                    head_module = ".".join(normalized[:-1])
                    if head_module in self.modules:
                        target = self.modules[head_module]
                        resolved2 = self.resolve_scope_name(target, normalized[-1])
                        if resolved2 is not None and resolved2[0] == "function":
                            return CallResolution(targets=(resolved2[1],))
                    if not normalized[0] == "self" and (
                        normalized[0] not in fn.param_types
                    ):
                        head = normalized[0]
                        rooted_external = (
                            head in module.imports.values()
                            or not head.startswith(self.package.split(".")[0])
                        )
                        if head_module not in self.modules and rooted_external and (
                            not self._receiver_types(fn, func.value)
                        ):
                            # numpy / stdlib / other foreign roots.
                            if chain[0] in module.imports or chain[0] in module.from_imports:
                                return CallResolution(external=normalized)
            # Typed receiver: self attribute, annotated parameter, known const.
            receivers = self._receiver_types(fn, func.value)
            if chain and chain[0] == "self" and len(chain) == 2 and fn.cls is not None:
                targets = self._method_targets(fn.cls, func.attr)
                if targets:
                    return CallResolution(targets=tuple(targets))
                for cls_info in self.mro(fn.cls):
                    if func.attr in cls_info.callable_attrs:
                        return CallResolution(
                            targets=tuple(cls_info.callable_attrs[func.attr])
                        )
                prop = self.find_property(fn.cls, func.attr)
                if prop is not None:
                    return CallResolution(targets=(prop.qualname,), opaque=True)
            if receivers:
                if "<builtin>" in receivers:
                    return CallResolution(external=("<builtin>", func.attr))
                targets2: list[str] = []
                for receiver in receivers:
                    for target_name in self._method_targets(receiver, func.attr):
                        if target_name not in targets2:
                            targets2.append(target_name)
                if targets2:
                    return CallResolution(targets=tuple(targets2))
            # Fallback: link by method name when few classes implement it.
            impls = self.methods_named(func.attr)
            if impls and len(impls) <= _FALLBACK_MAX_IMPLS:
                return CallResolution(targets=tuple(f.qualname for f in impls))
            if impls:
                return CallResolution(opaque=True)
            if chain and chain[0] == "self":
                # An untyped self attribute may hold any callable.
                return CallResolution(opaque=True)
            return CallResolution(external=("<unknown>", func.attr))
        if isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
            # Dispatch-table call: GROUPING_ALGORITHMS[name](problem).
            entries = self.dispatch_entries(module, func.value.id)
            if entries:
                targets = self._entry_targets(entries)
                if targets:
                    return CallResolution(targets=tuple(targets))
        return CallResolution(opaque=True)

    def resolve_property(self, fn: FunctionInfo, node: ast.Attribute) -> list[FunctionInfo]:
        """Property getters a non-call attribute access may invoke."""
        out: list[FunctionInfo] = []
        chain = attr_chain(node)
        receivers: set[str] = set()
        if chain and chain[0] == "self" and len(chain) == 2 and fn.cls is not None:
            receivers.add(fn.cls)
        receivers.update(self._receiver_types(fn, node.value) - {"<builtin>"})
        for receiver in receivers:
            prop = self.find_property(receiver, node.attr)
            if prop is not None and prop not in out:
                out.append(prop)
            for sub in self.subclasses(receiver):
                override = self.classes[sub].properties.get(node.attr)
                if override is not None and override not in out:
                    out.append(override)
        return out

    @staticmethod
    def _is_local_name(fn: FunctionInfo, name: str) -> bool:
        """Whether ``name`` is a parameter or assigned/def-ed inside ``fn``."""
        args = fn.node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs, args.vararg, args.kwarg]
        if any(param is not None and param.arg == name for param in params):
            return True
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id == name:
                    return True
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn.node and node.name == name:
                    return True
        return False

    # ---------------------------------------------------------- reachability

    def calls_of(self, qualname: str) -> list[tuple[ast.Call, CallResolution]]:
        """Every call site in a function (cached), nested defs included."""
        cached = self._call_cache.get(qualname)
        if cached is not None:
            return cached
        fn = self.functions[qualname]
        out: list[tuple[ast.Call, CallResolution]] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                out.append((node, self.resolve_call(fn, node)))
        # Decorators dispatch through the decorating function at call time.
        for decorator in fn.node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if isinstance(target, ast.Name):
                resolved = self.resolve_scope_name(self.modules[fn.module], target.id)
                if resolved is not None and resolved[0] == "function":
                    synthetic = ast.Call(func=target, args=[], keywords=[])
                    ast.copy_location(synthetic, fn.node)
                    out.append((synthetic, CallResolution(targets=(resolved[1],))))
        self._call_cache[qualname] = out
        return out

    def reachable(self, roots: Sequence[str]) -> dict[str, tuple[str, ...]]:
        """BFS over the call graph; maps each reached function to its path.

        The path is a tuple of qualnames from a root to the function
        (inclusive), the shortest found — used to explain *why* a finding
        is reachable.
        """
        paths: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.functions and root not in paths:
                paths[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for _node, resolution in self.calls_of(current):
                for target in resolution.targets:
                    if target in self.functions and target not in paths:
                        paths[target] = paths[current] + (target,)
                        queue.append(target)
        return paths

    def functions_with_prefix(self, prefixes: Sequence[str]) -> list[str]:
        """Qualnames of functions whose qualname starts with any prefix."""
        out = [
            qualname
            for qualname in self.functions
            if any(qualname.startswith(prefix) for prefix in prefixes)
        ]
        return sorted(out)


# ---------------------------------------------------------------- the loader


def _annotation_classes(
    expr: Optional[ast.expr], module: ModuleInfo, graph: ProgramGraph
) -> frozenset[str]:
    """Internal class qualnames named by a parameter annotation."""
    if expr is None:
        return frozenset()
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            expr = ast.parse(expr.value, mode="eval").body
        except SyntaxError:
            return frozenset()
    if isinstance(expr, ast.Name):
        resolved = graph.resolve_scope_name(module, expr.id)
        if resolved is not None and resolved[0] == "class":
            return frozenset({resolved[1]})
        return frozenset()
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        return _annotation_classes(expr.left, module, graph) | _annotation_classes(
            expr.right, module, graph
        )
    if isinstance(expr, ast.Subscript):
        base = expr.value
        if isinstance(base, ast.Name) and base.id in ("Optional", "Union"):
            inner = expr.slice
            if isinstance(inner, ast.Tuple):
                out: frozenset[str] = frozenset()
                for element in inner.elts:
                    out = out | _annotation_classes(element, module, graph)
                return out
            return _annotation_classes(inner, module, graph)
    return frozenset()


def _rhs_types(
    expr: ast.expr,
    module: ModuleInfo,
    graph: ProgramGraph,
    param_types: dict[str, frozenset[str]],
) -> frozenset[str]:
    """Classes an ``__init__`` right-hand side may construct or forward."""
    if isinstance(expr, ast.IfExp):
        return _rhs_types(expr.body, module, graph, param_types) | _rhs_types(
            expr.orelse, module, graph, param_types
        )
    if isinstance(expr, ast.BoolOp):
        out: frozenset[str] = frozenset()
        for value in expr.values:
            out = out | _rhs_types(value, module, graph, param_types)
        return out
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.Tuple, ast.DictComp, ast.ListComp,
                         ast.SetComp, ast.Constant)):
        return frozenset({"<builtin>"})
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in _BUILTIN_FACTORIES:
                return frozenset({"<builtin>"})
            resolved = graph.resolve_scope_name(module, func.id)
            if resolved is not None and resolved[0] == "class":
                return frozenset({resolved[1]})
        return frozenset()
    if isinstance(expr, ast.Name):
        if expr.id in param_types:
            return param_types[expr.id]
        resolved = graph.resolve_scope_name(module, expr.id)
        if resolved is not None and resolved[0] == "const":
            return frozenset({resolved[1]})
        return frozenset()
    if isinstance(expr, ast.Attribute):
        chain = attr_chain(expr)
        if len(chain) == 2:
            resolved = graph.resolve_scope_name(module, chain[0])
            if resolved is not None and resolved[0] == "module":
                target = graph.modules.get(resolved[1])
                if target is not None and chain[1] in target.const_types:
                    return frozenset({target.const_types[chain[1]]})
    return frozenset()


def _callable_rhs(expr: ast.expr, module: ModuleInfo, graph: ProgramGraph) -> frozenset[str]:
    """Function qualnames an ``__init__`` right-hand side may store as a callable."""
    if isinstance(expr, ast.IfExp):
        return _callable_rhs(expr.body, module, graph) | _callable_rhs(
            expr.orelse, module, graph
        )
    if isinstance(expr, ast.BoolOp):
        out: frozenset[str] = frozenset()
        for value in expr.values:
            out = out | _callable_rhs(value, module, graph)
        return out
    if isinstance(expr, ast.Name):
        resolved = graph.resolve_scope_name(module, expr.id)
        if resolved is not None and resolved[0] in ("function", "class"):
            return frozenset(graph._entry_targets([resolved]))
        return frozenset()
    if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
        entries = graph.dispatch_entries(module, expr.value.id)
        if entries:
            return frozenset(graph._entry_targets(entries))
    return frozenset()


def _is_property_def(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "property":
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr in ("setter", "deleter"):
            return True
    return False


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleInfo,
    cls: Optional[ClassInfo],
) -> FunctionInfo:
    scope = cls.qualname if cls is not None else module.name
    return FunctionInfo(
        qualname=f"{scope}.{node.name}",
        name=node.name,
        module=module.name,
        path=module.path,
        node=node,
        cls=cls.qualname if cls is not None else None,
        is_property=_is_property_def(node),
    )


def _resolve_relative(module_name: str, is_package: bool, level: int, target: Optional[str]) -> str:
    """Absolute module named by a ``from ... import`` with ``level`` dots."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname if alias.asname else alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                source = _resolve_relative(info.name, info.is_package, node.level, node.module)
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname if alias.asname else alias.name
                info.from_imports[local] = (source, alias.name)


def _collect_exports(info: ModuleInfo) -> None:
    for node in info.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            # __all__.append("name") / __all__.extend([...]).
            call = node.value
            chain = attr_chain(call.func)
            if chain[:1] == ("__all__",) and chain[1:] in (("append",), ("extend",)):
                for arg in call.args:
                    for element in ast.walk(arg):
                        if isinstance(element, ast.Constant) and isinstance(element.value, str):
                            info.exports.append((element.value, element.lineno))
            continue
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for element in ast.walk(value):
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        info.exports.append((element.value, element.lineno))


def _load_module(name: str, path: Path, root: Path) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    info = ModuleInfo(
        name=name,
        path=str(path),
        source=source,
        tree=tree,
        is_package=path.name == "__init__.py",
    )
    _collect_imports(info)
    _collect_exports(info)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _function_info(node, info, None)
            info.functions[node.name] = fn
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{name}.{node.name}", name=node.name, module=name, node=node
            )
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _function_info(member, info, cls)
                    if fn.is_property:
                        cls.properties[member.name] = fn
                    else:
                        cls.methods[member.name] = fn
            info.classes[node.name] = cls
    return info


def _link_classes(graph: ProgramGraph) -> None:
    """Resolve base classes, constants, annotations, and attribute types."""
    for info in graph.modules.values():
        # Module-level ClassName(...) constants and dispatch-table dicts.
        for node in info.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                resolved = graph.resolve_scope_name(info, value.func.id)
                if resolved is not None and resolved[0] == "class":
                    info.const_types[target.id] = resolved[1]
            elif isinstance(value, ast.Dict):
                entries: list[tuple[str, str]] = []
                for dict_value in value.values:
                    if not isinstance(dict_value, ast.Name):
                        continue
                    resolved = graph.resolve_scope_name(info, dict_value.id)
                    if resolved is not None and resolved[0] in ("function", "class"):
                        entries.append(resolved)
                if entries:
                    info.dispatch_tables[target.id] = tuple(entries)
    for info in graph.modules.values():
        for cls in info.classes.values():
            bases: list[str] = []
            for base in cls.node.bases:
                if isinstance(base, ast.Name):
                    resolved = graph.resolve_scope_name(info, base.id)
                    if resolved is not None and resolved[0] == "class":
                        bases.append(resolved[1])
                    else:
                        bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    chain = attr_chain(base)
                    bases.append(".".join(chain))
            cls.bases = tuple(bases)
    for info in graph.modules.values():
        for fn in _all_functions(info):
            args = fn.node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                types = _annotation_classes(arg.annotation, info, graph)
                if types:
                    fn.param_types[arg.arg] = types
    for info in graph.modules.values():
        for cls in info.classes.values():
            init = cls.methods.get("__init__")
            if init is None:
                continue
            for node in ast.walk(init.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    chain = attr_chain(target)
                    if len(chain) == 2 and chain[0] == "self":
                        types = _rhs_types(node.value, info, graph, init.param_types)
                        if types:
                            merged = cls.attr_types.get(chain[1], frozenset()) | types
                            cls.attr_types[chain[1]] = merged
                        callables = _callable_rhs(node.value, info, graph)
                        if callables:
                            merged_calls = (
                                cls.callable_attrs.get(chain[1], frozenset()) | callables
                            )
                            cls.callable_attrs[chain[1]] = merged_calls


def _all_functions(info: ModuleInfo) -> Iterator[FunctionInfo]:
    yield from info.functions.values()
    for cls in info.classes.values():
        yield from cls.methods.values()
        yield from cls.properties.values()


def find_package_root(paths: Sequence[str | Path]) -> Path:
    """Locate the package directory to analyze from CLI path arguments.

    Accepts either the package directory itself (``src/repro``) or a parent
    holding exactly one package (``src``).  The whole-program passes need
    the complete package; analyzing a lone file would silence every
    cross-module finding, so only directories are accepted.
    """
    for raw in paths:
        path = Path(raw)
        if not path.is_dir():
            continue
        if (path / "__init__.py").exists():
            return path
        candidates = sorted(
            child
            for child in path.iterdir()
            if child.is_dir()
            and child.name not in _SKIP_DIRS
            and (child / "__init__.py").exists()
        )
        if len(candidates) == 1:
            return candidates[0]
        if candidates:
            raise AnalysisError(
                f"{path} holds multiple packages ({', '.join(c.name for c in candidates)}); "
                "pass the package directory itself"
            )
    raise AnalysisError(
        "no package found: pass a package directory (containing __init__.py) "
        "or its direct parent"
    )


def build_program(package_dir: str | Path) -> ProgramGraph:
    """Parse every module under ``package_dir`` into a :class:`ProgramGraph`."""
    root = Path(package_dir)
    if not (root / "__init__.py").exists():
        raise AnalysisError(f"{root} is not a package (no __init__.py)")
    package = root.name
    graph = ProgramGraph(package, root)
    for path in sorted(root.rglob("*.py")):
        if _SKIP_DIRS.intersection(path.parts):
            continue
        relative = path.relative_to(root)
        parts = [package, *relative.parts[:-1]]
        if path.name != "__init__.py":
            parts.append(path.stem)
        name = ".".join(parts)
        graph.add_module(_load_module(name, path, root))
    _link_classes(graph)
    graph.finalize()
    return graph
