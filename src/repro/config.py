"""Evaluation and system parameters.

:class:`EvaluationConfig` mirrors Table 7.1 of the paper (epoch size ``E``,
number of tenants ``T``, tenant-size skew ``theta``, replication factor ``R``
and performance SLA ``P``) plus the log-generation knobs of Chapter 7.1
(users per tenant, batch sizes, think times, time-zone offsets, office
hours).  The paper's defaults are the dataclass defaults; benchmarks scale
``num_tenants`` and the horizon down so the full harness runs on a laptop,
which is recorded per-experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConfigurationError
from .units import DAY, HOUR

__all__ = [
    "EvaluationConfig",
    "LogGenerationConfig",
    "PAPER_EPOCH_SIZES",
    "PAPER_TENANT_COUNTS",
    "PAPER_THETAS",
    "PAPER_REPLICATION_FACTORS",
    "PAPER_SLA_LEVELS",
    "PAPER_NODE_SIZES",
    "DATA_GB_PER_NODE",
]

#: Parameter ranges of Table 7.1 (defaults in bold in the paper).
PAPER_EPOCH_SIZES: tuple[float, ...] = (0.1, 1.0, 10.0, 30.0, 90.0, 600.0, 1800.0)
PAPER_TENANT_COUNTS: tuple[int, ...] = (1000, 5000, 10000)
PAPER_THETAS: tuple[float, ...] = (0.1, 0.2, 0.5, 0.8, 0.99)
PAPER_REPLICATION_FACTORS: tuple[int, ...] = (1, 2, 3, 4)
PAPER_SLA_LEVELS: tuple[float, ...] = (95.0, 99.0, 99.9, 99.99)

#: Tenants may request 2/4/8/16/32-node MPPDBs (§7.1 Step 1).
PAPER_NODE_SIZES: tuple[int, ...] = (2, 4, 8, 16, 32)

#: "each node gets a 100GB data partition" (§7.1 Step 1).
DATA_GB_PER_NODE: float = 100.0

#: Time-zone offsets used in §7.1 Step 2 (hours).
_PAPER_TZ_OFFSETS: tuple[int, ...] = (0, 3, 5, 8, 16, 17, 19)


@dataclass(frozen=True)
class LogGenerationConfig:
    """Knobs of the two-step tenant-log generation methodology (§7.1).

    Step 1 (real query log collection): each tenant has at most
    ``max_users`` autonomous users; each user either submits a single random
    query or a batch of 1..``max_batch`` queries, then pauses for a think
    time drawn uniformly from ``[min_think_s, max_think_s]`` seconds.
    Sessions last ``session_hours`` hours.

    Step 2 (multi-tenant composition): a tenant receives a random time-zone
    offset, runs a morning session, an afternoon session after
    ``lunch_hours`` hours of lunch, and an evening reporting session
    ``evening_gap_hours`` hours after the office hours; weekends and
    ``holiday_weekdays`` shared public holidays are inactive.
    """

    max_users: int = 5
    max_batch: int = 10
    min_think_s: float = 3.0
    max_think_s: float = 600.0
    session_hours: float = 3.0
    lunch_hours: float = 2.0
    evening_gap_hours: float = 9.0
    horizon_days: int = 30
    workdays_per_week: int = 5
    holiday_weekdays: int = 2
    tz_offsets_hours: tuple[int, ...] = _PAPER_TZ_OFFSETS
    include_lunch: bool = True
    include_evening_session: bool = True

    def __post_init__(self) -> None:
        if self.max_users < 1:
            raise ConfigurationError("max_users must be >= 1")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if not (0 <= self.min_think_s <= self.max_think_s):
            raise ConfigurationError(
                f"think-time range [{self.min_think_s}, {self.max_think_s}] is invalid"
            )
        if self.session_hours <= 0:
            raise ConfigurationError("session_hours must be positive")
        if self.horizon_days < 1:
            raise ConfigurationError("horizon_days must be >= 1")
        if not (0 <= self.workdays_per_week <= 7):
            raise ConfigurationError("workdays_per_week must be in [0, 7]")
        if self.holiday_weekdays < 0:
            raise ConfigurationError("holiday_weekdays must be >= 0")
        if not self.tz_offsets_hours:
            raise ConfigurationError("at least one time-zone offset is required")
        for off in self.tz_offsets_hours:
            if not (0 <= off < 24):
                raise ConfigurationError(f"time-zone offsets must be in [0, 24), got {off}")

    @property
    def horizon_seconds(self) -> float:
        """Total generated history length, in seconds."""
        # One extra day absorbs sessions shifted past midnight by the
        # largest time-zone offset plus the evening reporting block.
        return (self.horizon_days + 1) * DAY

    @property
    def session_seconds(self) -> float:
        """Length of one office-hours session, in seconds."""
        return self.session_hours * HOUR

    def north_america_only(self) -> "LogGenerationConfig":
        """§7.4 modification (1): tenants get only +0 or +3 offsets."""
        return replace(self, tz_offsets_hours=(0, 3))

    def without_lunch(self) -> "LogGenerationConfig":
        """§7.4 modification (2): no lunch hour between the two sessions."""
        return replace(self, include_lunch=False)

    def single_timezone(self) -> "LogGenerationConfig":
        """§7.4 modification (3): all tenants get the same +0 offset."""
        return replace(self, tz_offsets_hours=(0,))


@dataclass(frozen=True)
class EvaluationConfig:
    """Table 7.1 parameters plus derived conveniences.

    Defaults are the paper's bold values — ``T = 5000``, ``theta = 0.8``,
    ``R = 3``, ``P = 99.9 %`` — with one deliberate exception: the default
    epoch size is ``E = 1 s`` instead of the paper's ``10 s``, because the
    epoch-size plateau of Figure 7.1 tracks query duration and this
    substrate's simulated queries are ~10x faster than the paper's testbed
    (see EXPERIMENTS.md, Fig 7.1 entry).  ``E = 1 s`` is our plateau point
    exactly as ``E = 10 s`` is theirs.
    """

    epoch_size_s: float = 1.0
    num_tenants: int = 5000
    theta: float = 0.8
    replication_factor: int = 3
    sla_percent: float = 99.9
    node_sizes: tuple[int, ...] = PAPER_NODE_SIZES
    data_gb_per_node: float = DATA_GB_PER_NODE
    seed: int = 20130625
    logs: LogGenerationConfig = field(default_factory=LogGenerationConfig)

    def __post_init__(self) -> None:
        if self.epoch_size_s <= 0:
            raise ConfigurationError("epoch_size_s must be positive")
        if self.num_tenants < 1:
            raise ConfigurationError("num_tenants must be >= 1")
        if not (0 < self.theta < 1):
            raise ConfigurationError(f"theta must be in (0, 1), got {self.theta}")
        if self.replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        if not (0 < self.sla_percent <= 100):
            raise ConfigurationError(f"sla_percent must be in (0, 100], got {self.sla_percent}")
        if not self.node_sizes:
            raise ConfigurationError("node_sizes must be non-empty")
        if any(n < 1 for n in self.node_sizes):
            raise ConfigurationError("node sizes must be >= 1")
        if len(set(self.node_sizes)) != len(self.node_sizes):
            raise ConfigurationError("node_sizes must be distinct")
        if self.data_gb_per_node <= 0:
            raise ConfigurationError("data_gb_per_node must be positive")

    @property
    def sla_fraction(self) -> float:
        """The SLA guarantee ``P`` as a fraction in (0, 1]."""
        return self.sla_percent / 100.0

    def data_gb_for_nodes(self, nodes: int) -> float:
        """Tenant data size implied by its requested parallelism (§7.1)."""
        if nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        return nodes * self.data_gb_per_node

    def scaled(self, **overrides: object) -> "EvaluationConfig":
        """Return a copy with the given fields replaced (frozen-safe)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def validate_node_sizes(node_sizes: Sequence[int]) -> tuple[int, ...]:
    """Validate and normalize a node-size menu to a sorted tuple."""
    sizes = tuple(sorted(set(int(n) for n in node_sizes)))
    if not sizes:
        raise ConfigurationError("node_sizes must be non-empty")
    if sizes[0] < 1:
        raise ConfigurationError("node sizes must be >= 1")
    return sizes


__all__.append("validate_node_sizes")
