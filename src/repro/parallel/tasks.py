"""Built-in shard tasks for the standard Thrifty workloads.

Each task is a module-level function registered with
:func:`~repro.parallel.shards.shard_task`, so a spawned worker resolves it
by importing this module.  The helpers next to each task build the
matching :class:`~repro.parallel.shards.ShardSpec` lists:

* ``sweep_point`` / :func:`sweep_shards` / :func:`run_sweep` — one shard
  per §7.3 sweep point (the parameter sweeps in
  :mod:`repro.analysis.sweeps`).
* ``pack_initial_group`` / :func:`pack_shards` — one shard per
  homogeneous initial group of Algorithm 2 (solver sharding for
  :func:`repro.packing.two_step.two_step_grouping`).
* ``replay_replica`` / :func:`replay_shards` — one shard per independent
  epoch-simulation replica (Monte-Carlo over derived seeds, optionally
  chaos-armed); per-shard :class:`~repro.obs.MemorySink` output rides
  back to the merger.
* ``probe`` — a tiny self-test task (sleep / deterministic failure /
  payload echo) used to verify a fabric installation and by the
  fault-path tests.

All payloads are plain picklable values; workloads are *built inside the
shard* from the config (each worker warms its own process-local cache)
rather than shipped across the process boundary.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.sweeps import BenchScale, GroupingRow, build_workload, run_grouping_experiment
from ..core.service import ThriftyService
from ..errors import ParallelError
from ..obs import MemorySink, Observer
from ..obs.sink import MetricSample
from ..packing.livbp import LIVBPwFCProblem
from ..packing.two_step import initial_groups, pack_initial_group
from ..units import DAY
from ..workload.activity import ActivityItem
from .merge import MergedResult, ResultMerger
from .runner import ProcessPoolRunner
from .shards import ShardContext, ShardPlanner, ShardSpec, shard_task

__all__ = [
    "sweep_shards",
    "run_sweep",
    "pack_shards",
    "replay_shards",
    "run_replicas",
]


# -- §7.3 sweep points -----------------------------------------------------


@shard_task("sweep_point")
def _sweep_point(ctx: ShardContext, parameter: str, value: object, scale: BenchScale) -> GroupingRow:
    """One sweep point: build the workload, solve with both heuristics.

    Emits one deterministic gauge sample per solver into the shard sink
    (timestamped by shard ordinal — sweeps have no simulation clock), so
    the merged sink carries a worker-count-independent metrics record of
    the whole sweep.  Solver/workload seconds land in ``ctx.timings`` for
    per-shard aggregation by the merger.
    """
    config = scale.config(**{parameter: value})
    with ctx.timer("workload_s"):
        workload = build_workload(config, scale.sessions_per_size)
    row = run_grouping_experiment(
        workload,
        epoch_size=config.epoch_size_s,
        replication_factor=config.replication_factor,
        sla_percent=config.sla_percent,
        parameter=parameter,
        value=value,
    )
    ctx.add_timing("two_step_s", row.two_step_seconds)
    ctx.add_timing("ffd_s", row.ffd_seconds)
    ordinal = float(ctx.spec.shard_id)
    for solver, effectiveness in (
        ("2-step", row.two_step_effectiveness),
        ("ffd", row.ffd_effectiveness),
    ):
        ctx.sink.on_metric(
            MetricSample(
                time=ordinal,
                name="sweep_effectiveness",
                kind="gauge",
                value=effectiveness,
                labels=(
                    ("parameter", parameter),
                    ("value", str(value)),
                    ("solver", solver),
                ),
            )
        )
    return row


def sweep_shards(
    parameter: str, values: Sequence[object], scale: BenchScale
) -> List[ShardSpec]:
    """One shard per sweep value, seeded from the scale's master seed."""
    planner = ShardPlanner(master_seed=scale.seed)
    return planner.plan(_sweep_point, [(parameter, value, scale) for value in values])


def run_sweep(
    parameter: str,
    values: Sequence[object],
    scale: BenchScale,
    runner: Optional[ProcessPoolRunner] = None,
) -> MergedResult:
    """Run a sweep through the fabric and merge (rows in value order)."""
    active = runner if runner is not None else ProcessPoolRunner(max_workers=0)
    return ResultMerger().merge(active.run(sweep_shards(parameter, values, scale)))


# -- Algorithm 2 initial-group packing ------------------------------------


@shard_task("pack_initial_group")
def _pack_initial_group(
    ctx: ShardContext,
    nodes_requested: int,
    items: Tuple[ActivityItem, ...],
    num_epochs: int,
    replication_factor: int,
    sla_fraction: float,
) -> List[List[int]]:
    """Step 2 of Algorithm 2 for one homogeneous node-size class."""
    with ctx.timer("pack_s"):
        groups = pack_initial_group(items, num_epochs, replication_factor, sla_fraction)
    ctx.sink.on_metric(
        MetricSample(
            time=float(ctx.spec.shard_id),
            name="pack_groups",
            kind="gauge",
            value=float(len(groups)),
            labels=(("nodes_requested", str(nodes_requested)),),
        )
    )
    return groups


def pack_shards(problem: LIVBPwFCProblem) -> List[ShardSpec]:
    """One shard per initial group, in ascending node-size order.

    Concatenating the merged shard values (``MergedResult.flat()``)
    reproduces the serial :func:`~repro.packing.two_step.two_step_grouping`
    result exactly, because Step 2 never moves tenants between classes.
    """
    by_size = initial_groups(problem.items)
    # Packing is deterministic and draws no randomness; the seed is moot.
    planner = ShardPlanner(master_seed=0)
    payloads = [
        (
            nodes,
            tuple(by_size[nodes]),
            problem.num_epochs,
            problem.replication_factor,
            problem.sla_fraction,
        )
        for nodes in sorted(by_size)
    ]
    return planner.plan(_pack_initial_group, payloads)


# -- epoch-simulation replicas (Monte-Carlo / chaos) -----------------------


@shard_task("replay_replica")
def _replay_replica(
    ctx: ShardContext,
    scale: BenchScale,
    replay_days: float,
    grouping: str,
    scaling: str,
    chaos_mtbf: Optional[float],
    observe: bool,
) -> Dict[str, float]:
    """One full epoch-simulation replica: deploy, (optionally) arm chaos, replay.

    The replica's workload and chaos schedule derive entirely from
    ``scale.seed`` — :func:`replay_shards` rewrites it per shard — so the
    shard is reproducible anywhere.  With ``observe=True`` the service is
    instrumented into the shard sink and the merged run carries every
    replica's metrics/spans in shard order.
    """
    config = scale.config()
    workload = build_workload(config, scale.sessions_per_size)
    observer = Observer(ctx.sink) if observe else None
    service = ThriftyService(config, grouping=grouping, scaling=scaling, observer=observer)
    service.deploy(workload)
    until = replay_days * DAY
    armed = 0
    if chaos_mtbf is not None:
        armed = service.arm_chaos(chaos_mtbf, horizon=until)
    with ctx.timer("replay_s"):
        report = service.replay(until=until)
    summary = report.summary()
    summary["sim_epochs"] = until / config.epoch_size_s
    summary["seed"] = float(scale.seed)
    summary["chaos_armed"] = float(armed)
    chaos = service.chaos
    summary["node_failures"] = float(len(chaos.failures)) if chaos is not None else 0.0
    return summary


def replay_shards(
    scale: BenchScale,
    replicas: int,
    replay_days: float = 1.0,
    grouping: str = "two-step",
    scaling: str = "lightweight",
    chaos_mtbf: Optional[float] = None,
    observe: bool = False,
) -> List[ShardSpec]:
    """One shard per Monte-Carlo replica, each with a derived master seed."""
    if replicas < 1:
        raise ParallelError(f"replicas must be >= 1, got {replicas!r}")
    planner = ShardPlanner(master_seed=scale.seed)
    payloads = [
        (replace(scale, seed=seed), replay_days, grouping, scaling, chaos_mtbf, observe)
        for seed in planner.replica_seeds(replicas)
    ]
    return planner.plan(_replay_replica, payloads)


def run_replicas(
    scale: BenchScale,
    replicas: int,
    runner: Optional[ProcessPoolRunner] = None,
    **options: Any,
) -> MergedResult:
    """Run replay replicas through the fabric and merge their summaries."""
    active = runner if runner is not None else ProcessPoolRunner(max_workers=0)
    return ResultMerger().merge(active.run(replay_shards(scale, replicas, **options)))


# -- fabric self-test ------------------------------------------------------


@shard_task("probe")
def _probe(
    ctx: ShardContext,
    sleep_s: float = 0.0,
    fail_below_attempt: int = 0,
    payload: object = None,
) -> Dict[str, object]:
    """Diagnostic shard: optionally sleep, fail deterministically, echo.

    ``fail_below_attempt=k`` makes attempts ``0..k-1`` raise — exercising
    the runner's retry path end-to-end (the retried spec reaches the task
    with a higher ``attempt`` but the *same* RNG stream).
    """
    if ctx.spec.attempt < fail_below_attempt:
        raise ParallelError(
            f"probe shard {ctx.spec.shard_id} failing on attempt {ctx.spec.attempt}"
        )
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    return {
        "shard_id": ctx.spec.shard_id,
        "attempt": ctx.spec.attempt,
        "draw": float(ctx.rng.stream("probe").random()),
        "payload": payload,
    }
