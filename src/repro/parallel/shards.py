"""Shard specifications, the task registry, and the shard planner.

The execution fabric moves *self-describing* units of work between
processes: a :class:`ShardSpec` names a registered task (as a
``"module:name"`` reference the worker process can resolve by importing
the module), carries a picklable positional payload, and records the
master seed the shard's RNG streams derive from.  Because the spec is the
*complete* description of the work, a failed shard can be replayed in
isolation — :class:`~repro.errors.ShardFailedError` carries it verbatim.

Determinism contract
--------------------

Every shard derives its randomness as
``derive_seed(master_seed, "shard", shard_id)`` — a pure function of the
spec, never of the worker that happens to execute it.  Together with the
ordered :class:`~repro.parallel.merge.ResultMerger`, this makes a run
bit-identical at any worker count: same shards, same streams, same merge
order.  Wall-clock *timings* are measurements, not simulation outputs,
and are explicitly outside the contract (see ``docs/PARALLELISM.md``).
"""

from __future__ import annotations

import contextlib
import importlib
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from ..errors import ParallelError
from ..obs.sink import MemorySink, MetricSample, ObsEvent, SpanRecord
from ..rng import RngFactory, derive_seed

__all__ = [
    "ShardSpec",
    "ShardContext",
    "ShardResult",
    "ShardPlanner",
    "shard_task",
    "task_ref",
    "resolve_task",
]


@dataclass(frozen=True)
class ShardSpec:
    """One self-describing unit of parallel work.

    ``task`` is a ``"module.path:task_name"`` reference resolvable in any
    process via :func:`resolve_task`; ``payload`` is the task's positional
    arguments and must be picklable.  ``attempt`` counts retries (0-based)
    and deliberately does **not** feed the RNG derivation, so a retried
    shard reproduces the original shard bit-for-bit.
    """

    task: str
    shard_id: int
    num_shards: int
    master_seed: int
    payload: Tuple[Any, ...] = ()
    attempt: int = 0

    def __post_init__(self) -> None:
        if ":" not in self.task:
            raise ParallelError(
                f"task reference {self.task!r} is not of the form 'module:name'"
            )
        if self.shard_id < 0 or self.num_shards < 1 or self.shard_id >= self.num_shards:
            raise ParallelError(
                f"shard_id {self.shard_id!r} out of range for {self.num_shards!r} shard(s)"
            )
        if self.attempt < 0:
            raise ParallelError(f"attempt must be >= 0, got {self.attempt!r}")

    @property
    def seed(self) -> int:
        """The shard's derived seed: ``derive_seed(master, "shard", shard_id)``."""
        return derive_seed(self.master_seed, "shard", self.shard_id)

    def retry(self) -> "ShardSpec":
        """The same shard with ``attempt`` advanced by one."""
        return replace(self, attempt=self.attempt + 1)


@dataclass
class ShardContext:
    """Everything a shard task receives besides its payload.

    * ``rng`` — an independent :class:`~repro.rng.RngFactory` rooted at the
      shard's derived seed; streams are identical no matter which worker
      (or how many workers) execute the shard.
    * ``sink`` — a shard-local :class:`~repro.obs.MemorySink`; whatever the
      task emits rides back in the :class:`ShardResult` and is recombined
      in shard order by the merger.
    * ``timings`` — named wall-clock durations measured *inside* the shard
      with :func:`time.perf_counter`; the merger sums them per name, so
      aggregate solver time never includes pool scheduling noise.
    """

    spec: ShardSpec
    rng: RngFactory
    sink: MemorySink = field(default_factory=MemorySink)
    timings: Dict[str, float] = field(default_factory=dict)

    def add_timing(self, name: str, seconds: float) -> None:
        """Accumulate a pre-measured duration under ``name``."""
        self.timings[name] = self.timings.get(name, 0.0) + float(seconds)

    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Measure the enclosed block with ``perf_counter`` into ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_timing(name, time.perf_counter() - started)


@dataclass(frozen=True)
class ShardResult:
    """What a shard sends back: the task's value plus its side channels."""

    shard_id: int
    task: str
    value: Any
    attempt: int = 0
    elapsed_s: float = 0.0
    timings: Tuple[Tuple[str, float], ...] = ()
    metrics: Tuple[MetricSample, ...] = ()
    spans: Tuple[SpanRecord, ...] = ()
    events: Tuple[ObsEvent, ...] = ()


#: Registered shard tasks, keyed by their ``"module:name"`` reference.
_TASKS: Dict[str, Callable[..., Any]] = {}

#: Attribute set on a decorated function carrying its task reference.
_TASK_ATTR = "__shard_task_ref__"


def shard_task(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a function as a shard task under ``name``.

    The task's first parameter must be the :class:`ShardContext`; the
    remaining parameters come positionally from ``ShardSpec.payload``.
    Registration happens at import time of the defining module, which is
    what makes specs resolvable inside freshly spawned workers.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        ref = f"{fn.__module__}:{name}"
        if ref in _TASKS and _TASKS[ref] is not fn:
            raise ParallelError(f"duplicate shard task reference {ref!r}")
        _TASKS[ref] = fn
        setattr(fn, _TASK_ATTR, ref)
        return fn

    return decorate


def task_ref(task: "Callable[..., Any] | str") -> str:
    """The ``"module:name"`` reference of a registered task (or pass-through)."""
    if isinstance(task, str):
        return task
    ref = getattr(task, _TASK_ATTR, None)
    if ref is None:
        raise ParallelError(
            f"{task!r} is not a registered shard task; decorate it with @shard_task"
        )
    return str(ref)


def resolve_task(ref: str) -> Callable[..., Any]:
    """Resolve a task reference, importing its defining module if needed.

    This is the spawn-safety hinge: a worker process starts with an empty
    registry, imports ``module`` from the reference, and the import's
    ``@shard_task`` decorations repopulate it.
    """
    if ref not in _TASKS:
        module_name = ref.split(":", 1)[0]
        try:
            importlib.import_module(module_name)
        except ImportError as exc:
            raise ParallelError(f"cannot import task module {module_name!r}: {exc}") from exc
    try:
        return _TASKS[ref]
    except KeyError:
        raise ParallelError(f"unknown shard task {ref!r}") from None


def execute_shard(spec: ShardSpec) -> ShardResult:
    """Run one shard in the current process and package its result.

    Module-level (hence picklable) so :class:`~repro.parallel.runner.ProcessPoolRunner`
    can submit it directly to a ``concurrent.futures`` pool; the serial
    ``workers=0`` fallback calls it in-process for identical semantics.
    """
    fn = resolve_task(spec.task)
    ctx = ShardContext(spec=spec, rng=RngFactory(spec.seed))
    started = time.perf_counter()
    value = fn(ctx, *spec.payload)
    elapsed = time.perf_counter() - started
    return ShardResult(
        shard_id=spec.shard_id,
        task=spec.task,
        value=value,
        attempt=spec.attempt,
        elapsed_s=elapsed,
        timings=tuple(sorted(ctx.timings.items())),
        metrics=tuple(ctx.sink.metrics),
        spans=tuple(ctx.sink.spans),
        events=tuple(ctx.sink.events),
    )


@dataclass(frozen=True)
class ShardPlanner:
    """Splits embarrassingly-parallel work into :class:`ShardSpec` lists.

    The planner is deliberately dumb: one payload, one shard.  Whoever
    builds the payload list controls granularity (sweep points, initial
    groups, Monte-Carlo replicas); helpers for the standard Thrifty
    workloads live in :mod:`repro.parallel.tasks`.
    """

    master_seed: int

    def plan(
        self, task: "Callable[..., Any] | str", payloads: Sequence[Tuple[Any, ...]]
    ) -> List[ShardSpec]:
        """One shard per payload, ids assigned in payload order."""
        if not payloads:
            return []
        ref = task_ref(task)
        total = len(payloads)
        return [
            ShardSpec(
                task=ref,
                shard_id=index,
                num_shards=total,
                master_seed=self.master_seed,
                payload=tuple(payload),
            )
            for index, payload in enumerate(payloads)
        ]

    def replica_seeds(self, replicas: int, label: str = "replica") -> List[int]:
        """Independent per-replica master seeds for Monte-Carlo sharding."""
        if replicas < 1:
            raise ParallelError(f"replicas must be >= 1, got {replicas!r}")
        return [derive_seed(self.master_seed, label, i) for i in range(replicas)]
