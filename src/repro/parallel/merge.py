"""Ordered recombination of shard results.

Workers complete in whatever order the scheduler pleases; the
:class:`ResultMerger` restores the canonical order — ascending
``shard_id`` — before recombining, so a parallel run's merged output is a
pure function of the shard specs:

* **values** — one entry per shard, shard order; :meth:`MergedResult.flat`
  concatenates list-valued shards (e.g. per-initial-group tenant groups).
* **observability** — each shard's :class:`~repro.obs.MemorySink` records
  (metric samples, finished spans, one-shot events) are appended into one
  merged sink, shard by shard, preserving each shard's internal arrival
  order.  Span/trace ids are per-shard streams and are left untouched;
  consumers that need global uniqueness should key by ``(shard, span_id)``.
* **timings** — per-shard ``perf_counter`` durations are summed by name.
  This is the aggregation the solver-time panels use: the cost of the
  work itself, measured inside each shard, never the wall time of the
  pool (which would silently fold scheduling noise into a figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..errors import ParallelError
from ..obs.sink import MemorySink
from .shards import ShardResult

__all__ = ["MergedResult", "ResultMerger"]


@dataclass(frozen=True)
class MergedResult:
    """The recombined output of one shard plan."""

    values: Tuple[Any, ...]
    timings: Dict[str, float] = field(default_factory=dict)
    sink: MemorySink = field(default_factory=MemorySink)
    shard_count: int = 0
    attempts: int = 0
    elapsed_s: float = 0.0

    def flat(self) -> List[Any]:
        """Concatenate list/tuple-valued shards into one flat list."""
        out: List[Any] = []
        for value in self.values:
            if not isinstance(value, (list, tuple)):
                raise ParallelError(
                    f"flat() needs list/tuple shard values, got {type(value).__name__}"
                )
            out.extend(value)
        return out


class ResultMerger:
    """Reorders out-of-order shard results and recombines their outputs."""

    def merge(self, results: Sequence[ShardResult]) -> MergedResult:
        """Merge shard results (any completion order) into shard order."""
        ordered = sorted(results, key=lambda r: r.shard_id)
        seen = {r.shard_id for r in ordered}
        if len(seen) != len(ordered):
            raise ParallelError("duplicate shard_id in results; merge needs one result per shard")
        timings: Dict[str, float] = {}
        sink = MemorySink()
        attempts = 0
        elapsed = 0.0
        for result in ordered:
            for name, seconds in result.timings:
                timings[name] = timings.get(name, 0.0) + seconds
            sink.metrics.extend(result.metrics)
            sink.spans.extend(result.spans)
            sink.events.extend(result.events)
            attempts += result.attempt + 1
            elapsed += result.elapsed_s
        return MergedResult(
            values=tuple(r.value for r in ordered),
            timings=timings,
            sink=sink,
            shard_count=len(ordered),
            attempts=attempts,
            elapsed_s=elapsed,
        )
