"""``repro.parallel`` — the deterministic multi-process execution fabric.

The paper's evaluation sweeps five parameters over simulations of
thousands of tenants; every one of those work units is embarrassingly
parallel, and this package is the one sanctioned way to spread them over
cores (lint rule THR009 forbids raw ``multiprocessing`` /
``concurrent.futures`` anywhere else in ``src/repro``).

The moving parts, in pipeline order:

* :class:`ShardPlanner` splits work into self-describing
  :class:`ShardSpec` units (task reference + picklable payload + master
  seed);
* :class:`ProcessPoolRunner` executes them on a spawn-safe process pool
  — ``max_workers=0`` is the in-process serial fallback with identical
  semantics — with per-shard timeout/retry from a
  :class:`~repro.core.fault.RetryPolicy` and a typed
  :class:`~repro.errors.ShardFailedError` carrying the spec on
  exhaustion;
* :class:`ResultMerger` reorders out-of-order completions by
  ``shard_id`` and recombines values, per-shard ``perf_counter``
  timings, and per-shard :class:`~repro.obs.MemorySink` observability
  output into one :class:`MergedResult`.

Because every shard derives its RNG streams as
``derive_seed(master_seed, "shard", shard_id)`` and the merge order is
canonical, results are bit-identical at any worker count.  See
``docs/PARALLELISM.md`` for the architecture and the recipe for sharding
a new workload; :mod:`repro.parallel.tasks` holds the built-in tasks
(sweep points, Algorithm 2 initial groups, replay replicas).
"""

from __future__ import annotations

from .merge import MergedResult, ResultMerger
from .runner import DEFAULT_SHARD_RETRY_POLICY, ProcessPoolRunner
from .shards import (
    ShardContext,
    ShardPlanner,
    ShardResult,
    ShardSpec,
    execute_shard,
    resolve_task,
    shard_task,
    task_ref,
)
from .tasks import pack_shards, replay_shards, run_replicas, run_sweep, sweep_shards

__all__ = [
    "ShardSpec",
    "ShardContext",
    "ShardResult",
    "ShardPlanner",
    "shard_task",
    "task_ref",
    "resolve_task",
    "execute_shard",
    "ProcessPoolRunner",
    "DEFAULT_SHARD_RETRY_POLICY",
    "ResultMerger",
    "MergedResult",
    "sweep_shards",
    "run_sweep",
    "pack_shards",
    "replay_shards",
    "run_replicas",
]
