"""The process-pool shard runner: the one sanctioned parallelism entry point.

:class:`ProcessPoolRunner` executes :class:`~repro.parallel.shards.ShardSpec`
lists on a ``concurrent.futures.ProcessPoolExecutor`` (lint rule THR009
forbids raw ``multiprocessing`` / ``concurrent.futures`` use anywhere else
in ``src/repro``).  Three properties make it safe to drop into the
deterministic stack:

* **Spawn-safe.**  Workers are started with the ``spawn`` method by
  default — a fresh interpreter that re-imports the task's module — so
  nothing depends on forked globals, open sinks, or inherited RNG state.
* **Worker-count independent.**  Every shard derives its RNG from the
  spec alone and results are keyed by ``shard_id``, so ``workers=8``
  produces bit-identical values to ``workers=2`` or the in-process
  ``workers=0`` fallback (used by tests and as the degenerate case).
* **Fault-bounded.**  Each shard gets a retry budget from a
  :class:`~repro.core.fault.RetryPolicy`; a worker crash, a per-shard
  timeout, or a task exception consumes one attempt, and exhaustion
  raises a typed :class:`~repro.errors.ShardFailedError` carrying the
  spec for replay.

Timeouts are enforced only in pool mode: the clock for shard *i* starts
when the runner begins waiting on its future (earlier waits overlap its
execution, so a timeout is a lower bound on the shard's true age).  The
serial fallback executes shards synchronously and cannot preempt them, so
``timeout_s`` is ignored there; retry-on-exception still applies.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import time
from typing import Dict, List, Optional, Sequence

from ..core.fault import RetryPolicy
from ..errors import ParallelError, ShardFailedError
from .shards import ShardResult, ShardSpec, execute_shard

__all__ = ["ProcessPoolRunner", "DEFAULT_SHARD_RETRY_POLICY"]

#: Default shard retry budget: one retry, no backoff delay (shards are
#: deterministic, so immediate replay is as good as a delayed one; the
#: delay knobs exist for callers whose shards contend on real resources).
DEFAULT_SHARD_RETRY_POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)

#: Worker start methods the runner accepts.
_START_METHODS = ("spawn", "forkserver", "fork")


def _failure_message(spec: ShardSpec, attempts: int, exc: BaseException) -> str:
    return (
        f"shard {spec.shard_id} ({spec.task}) failed after "
        f"{attempts} attempt(s): {exc!r}"
    )


class ProcessPoolRunner:
    """Runs shards on a process pool, or in-process when ``max_workers=0``."""

    def __init__(
        self,
        max_workers: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        start_method: str = "spawn",
    ) -> None:
        if max_workers < 0:
            raise ParallelError(f"max_workers must be >= 0, got {max_workers!r}")
        if timeout_s is not None and timeout_s <= 0:
            raise ParallelError(f"timeout_s must be positive, got {timeout_s!r}")
        if start_method not in _START_METHODS:
            raise ParallelError(
                f"start_method must be one of {_START_METHODS}, got {start_method!r}"
            )
        self.max_workers = max_workers
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_SHARD_RETRY_POLICY
        self.timeout_s = timeout_s
        self.start_method = start_method

    def run(self, specs: Sequence[ShardSpec]) -> List[ShardResult]:
        """Execute every shard, returning results in the order given.

        Raises :class:`~repro.errors.ShardFailedError` as soon as any
        shard exhausts its attempts; results of shards already completed
        are discarded (the caller replays from the specs, which are cheap
        and self-describing).
        """
        spec_list = list(specs)
        seen = {spec.shard_id for spec in spec_list}
        if len(seen) != len(spec_list):
            raise ParallelError("duplicate shard_id in specs; every shard must be unique")
        if not spec_list:
            return []
        if self.max_workers == 0:
            return [self._run_one_serial(spec) for spec in spec_list]
        by_id = self._run_pool(spec_list)
        return [by_id[spec.shard_id] for spec in spec_list]

    # -- serial fallback ---------------------------------------------------

    def _run_one_serial(self, spec: ShardSpec) -> ShardResult:
        while True:
            try:
                return execute_shard(spec)
            except Exception as exc:
                attempts = spec.attempt + 1
                if attempts >= self.retry_policy.max_attempts:
                    raise ShardFailedError(
                        _failure_message(spec, attempts, exc), spec=spec, attempts=attempts
                    ) from exc
                spec = spec.retry()
                self._backoff(spec.attempt)

    # -- pool mode ---------------------------------------------------------

    def _run_pool(self, specs: List[ShardSpec]) -> Dict[int, ShardResult]:
        results: Dict[int, ShardResult] = {}
        pending = specs
        while pending:
            pending = self._run_round(pending, results)
            if pending:
                self._backoff(pending[0].attempt)
        return results

    def _run_round(
        self, specs: Sequence[ShardSpec], results: Dict[int, ShardResult]
    ) -> List[ShardSpec]:
        """One pool generation: submit every spec, harvest, return retries."""
        context = multiprocessing.get_context(self.start_method)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(specs)), mp_context=context
        )
        retries: List[ShardSpec] = []
        timed_out = False
        try:
            futures = [(spec, pool.submit(execute_shard, spec)) for spec in specs]
            for spec, future in futures:
                attempts = spec.attempt + 1
                try:
                    result = future.result(timeout=self.timeout_s)
                except (concurrent.futures.TimeoutError, TimeoutError) as exc:
                    timed_out = True
                    future.cancel()
                    if attempts >= self.retry_policy.max_attempts:
                        raise ShardFailedError(
                            _failure_message(spec, attempts, exc),
                            spec=spec,
                            attempts=attempts,
                        ) from exc
                    retries.append(spec.retry())
                except Exception as exc:
                    # Task error or worker crash (BrokenProcessPool); both
                    # consume one attempt and are retried in a fresh pool.
                    if attempts >= self.retry_policy.max_attempts:
                        raise ShardFailedError(
                            _failure_message(spec, attempts, exc),
                            spec=spec,
                            attempts=attempts,
                        ) from exc
                    retries.append(spec.retry())
                else:
                    results[result.shard_id] = result
        finally:
            # After a timeout the stuck worker is abandoned: cancel what
            # never started and return without joining, so the caller is
            # not held hostage by the very shard that overran.
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return retries

    # -- shared retry bookkeeping -----------------------------------------

    def _backoff(self, attempt: int) -> None:
        """Wall-clock delay before retry number ``attempt`` (0 by default)."""
        delay = self.retry_policy.backoff_s(max(1, attempt))
        if delay > 0:
            time.sleep(delay)
