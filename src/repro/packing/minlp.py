"""The MINLP formulation of LIVBPwFC (Appendix 9.1).

Minimize      sum_{j=1}^{ceil(T/R)}  max_i ( R * n_i * x_ij )
subject to    sum_{k=1}^{d} H[ R - sum_i A_i[k] * x_ij ]  >=  P% * d   (forall j)
              sum_j x_ij = 1                                          (forall i)
              x_ij in {0, 1}

where ``H`` is the discretized Heaviside step function.  The formulation
has non-linear constraints and many local minima, so only general-purpose
global optimizers apply (the paper uses DIRECT [14] and reports ~12 days
for 20 tenants).  This module exposes the exact objective/constraint
evaluation plus a penalized scalarization consumable by any box-constrained
optimizer (:mod:`~repro.packing.direct` supplies one).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import PackingError
from .livbp import GroupingSolution, LIVBPwFCProblem

__all__ = ["MINLPFormulation"]


@dataclass(frozen=True)
class MINLPEvaluation:
    """Result of evaluating one assignment."""

    objective: float
    feasible: bool
    short_epochs: int


class MINLPFormulation:
    """Evaluation oracle for the Appendix 9.1 program."""

    def __init__(self, problem: LIVBPwFCProblem, penalty_per_epoch: float = 1000.0) -> None:
        if penalty_per_epoch <= 0:
            raise PackingError("penalty_per_epoch must be positive")
        self.problem = problem
        self.penalty_per_epoch = float(penalty_per_epoch)
        self.num_tenants = len(problem.items)
        #: J = ceil(T / R) — each group supports R concurrently active
        #: tenants, so no more groups are ever needed (Appendix 9.1).
        self.num_groups = max(1, math.ceil(self.num_tenants / problem.replication_factor))
        self._nodes = np.array([item.nodes_requested for item in problem.items], dtype=np.int64)

    def _check_assignment(self, assignment: Sequence[int]) -> np.ndarray:
        arr = np.asarray(assignment, dtype=np.int64)
        if arr.shape != (self.num_tenants,):
            raise PackingError(
                f"assignment must have length T={self.num_tenants}, got shape {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.num_groups):
            raise PackingError(
                f"group indices must be in [0, {self.num_groups}), "
                f"got range [{arr.min()}, {arr.max()}]"
            )
        return arr

    def objective(self, assignment: Sequence[int]) -> int:
        """Equation 9.1: total of ``R * max n_i`` over non-empty groups."""
        arr = self._check_assignment(assignment)
        total = 0
        for j in np.unique(arr):
            members = self._nodes[arr == j]
            total += self.problem.replication_factor * int(members.max())
        return total

    def constraint_short_epochs(self, assignment: Sequence[int]) -> int:
        """Total shortfall of equation 9.2 across groups.

        For each group, the number of epochs *missing* from the required
        ``P% * d`` epochs with at most ``R`` active tenants; zero iff the
        assignment is feasible.
        """
        arr = self._check_assignment(assignment)
        problem = self.problem
        d = problem.num_epochs
        required = problem.sla_fraction * d
        shortfall = 0
        for j in np.unique(arr):
            counts = np.zeros(d, dtype=np.int32)
            for i in np.nonzero(arr == j)[0]:
                counts[problem.items[int(i)].epochs] += 1
            ok_epochs = int(np.count_nonzero(counts <= problem.replication_factor))
            shortfall += max(0, math.ceil(required - 1e-9) - ok_epochs)
        return shortfall

    def evaluate(self, assignment: Sequence[int]) -> MINLPEvaluation:
        """Objective and feasibility of one assignment."""
        short = self.constraint_short_epochs(assignment)
        return MINLPEvaluation(
            objective=float(self.objective(assignment)),
            feasible=short == 0,
            short_epochs=short,
        )

    def penalized(self, assignment: Sequence[int]) -> float:
        """Scalarized value: objective + penalty * shortfall (for optimizers)."""
        evaluation = self.evaluate(assignment)
        return evaluation.objective + self.penalty_per_epoch * evaluation.short_epochs

    def decode(self, point: Sequence[float]) -> np.ndarray:
        """Random-key decoding: map ``[0,1]^T`` to a group assignment."""
        arr = np.asarray(point, dtype=np.float64)
        if arr.shape != (self.num_tenants,):
            raise PackingError(
                f"point must have length T={self.num_tenants}, got shape {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() > 1):
            raise PackingError("points must lie in the unit box")
        decoded = np.minimum((arr * self.num_groups).astype(np.int64), self.num_groups - 1)
        return decoded

    def continuous_objective(self, point: Sequence[float]) -> float:
        """Penalized value of the decoded point (the DIRECT target)."""
        return self.penalized(self.decode(point))

    def solution_from_assignment(self, assignment: Sequence[int], solver: str, solve_seconds: float) -> GroupingSolution:
        """Materialize a :class:`GroupingSolution` from a feasible assignment."""
        arr = self._check_assignment(assignment)
        groups: list[list[int]] = []
        for j in np.unique(arr):
            groups.append(
                [self.problem.items[int(i)].tenant_id for i in np.nonzero(arr == j)[0]]
            )
        return GroupingSolution(self.problem, groups, solver=solver, solve_seconds=solve_seconds)
