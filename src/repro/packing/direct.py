"""The DIRECT global optimization algorithm (DIviding RECTangles).

A from-scratch implementation of Jones' DIRECT [14] for box-constrained
global minimization, used — exactly as in the paper — to attack the MINLP
formulation of Appendix 9.1 on tiny instances ("these general-purpose
global optimization algorithms/solvers run extremely slow for more than 20
variables"; the paper reports ~12 days for 20 tenants, which is the point
of the heuristics).

The search space is the unit box ``[0, 1]^n``.  Each hyper-rectangle keeps
its center, value and per-dimension trisection levels; every iteration
selects the *potentially optimal* rectangles via the lower convex hull of
(measure, best value) and trisects them along their longest sides, longest
dimensions ordered by the better of the two new samples (Jones' rule).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..errors import PackingError
from ..obs.profiling import profiled
from .livbp import GroupingSolution, LIVBPwFCProblem
from .minlp import MINLPFormulation

__all__ = ["DirectOptimizer", "DirectResult", "solve_livbp_with_direct"]


@dataclass
class _Rect:
    """One hyper-rectangle of the DIRECT partition."""

    center: np.ndarray
    levels: np.ndarray
    value: float

    def measure(self) -> float:
        """Half-diagonal length (Jones' size measure)."""
        sides = 3.0 ** (-self.levels.astype(np.float64))
        return 0.5 * float(np.linalg.norm(sides))

    def max_side_dims(self) -> np.ndarray:
        """Dimensions along which the rectangle is longest (lowest level)."""
        return np.nonzero(self.levels == self.levels.min())[0]


@dataclass(frozen=True)
class DirectResult:
    """Outcome of a DIRECT run."""

    best_point: np.ndarray
    best_value: float
    evaluations: int
    iterations: int
    elapsed_s: float
    history: tuple[float, ...] = field(default_factory=tuple)


class DirectOptimizer:
    """Minimize ``f`` over the unit box ``[0, 1]^dims``."""

    def __init__(
        self,
        func: Callable[[np.ndarray], float],
        dims: int,
        epsilon: float = 1e-4,
    ) -> None:
        if dims < 1:
            raise PackingError(f"dims must be >= 1, got {dims!r}")
        if epsilon < 0:
            raise PackingError("epsilon must be non-negative")
        self._func = func
        self._dims = dims
        self._epsilon = float(epsilon)
        self._evals = 0

    def _evaluate(self, point: np.ndarray) -> float:
        self._evals += 1
        value = float(self._func(point))
        if math.isnan(value):
            raise PackingError("objective returned NaN")
        return value

    def _potentially_optimal(self, rects: list[_Rect], best_value: float) -> list[int]:
        """Indices of potentially optimal rectangles (lower-hull selection)."""
        # Best rectangle per distinct measure.
        best_by_measure: dict[float, int] = {}
        for idx, rect in enumerate(rects):
            m = round(rect.measure(), 12)
            cur = best_by_measure.get(m)
            if cur is None or rect.value < rects[cur].value:
                best_by_measure[m] = idx
        points = sorted(
            ((m, rects[i].value, i) for m, i in best_by_measure.items()),
            key=lambda t: (t[0], t[1]),
        )
        # Lower convex hull over (measure, value), measures ascending.
        hull: list[tuple[float, float, int]] = []
        for point in points:
            while len(hull) >= 2:
                (x1, y1, _), (x2, y2, _) = hull[-2], hull[-1]
                x3, y3, _ = point
                cross = (x2 - x1) * (y3 - y1) - (y2 - y1) * (x3 - x1)
                if cross <= 0:
                    hull.pop()
                else:
                    break
            hull.append(point)
        # Epsilon test: keep hull points that could improve on the best
        # value by at least eps*|best| for some K (slope to the next hull
        # point gives the binding K; the largest rectangle always passes).
        selected: list[int] = []
        for pos, (m, v, idx) in enumerate(hull):
            if pos == len(hull) - 1:
                selected.append(idx)
                continue
            m_next, v_next, _ = hull[pos + 1]
            if m_next == m:
                continue
            slope = (v_next - v) / (m_next - m)
            attainable = v + slope * (0.0 - m)
            threshold = best_value - self._epsilon * abs(best_value)
            if attainable <= threshold:
                selected.append(idx)
        return selected

    def minimize(self, max_evals: int = 500, max_iters: Optional[int] = None) -> DirectResult:
        """Run DIRECT; stops after ``max_evals`` evaluations or ``max_iters``."""
        if max_evals < 1:
            raise PackingError("max_evals must be >= 1")
        started = time.perf_counter()
        self._evals = 0
        center = np.full(self._dims, 0.5)
        rects: list[_Rect] = [
            _Rect(center=center, levels=np.zeros(self._dims, dtype=np.int64), value=self._evaluate(center))
        ]
        best_point = rects[0].center.copy()
        best_value = rects[0].value
        history = [best_value]
        iteration = 0
        while self._evals < max_evals and (max_iters is None or iteration < max_iters):
            iteration += 1
            selected = self._potentially_optimal(rects, best_value)
            progressed = False
            for idx in selected:
                if self._evals >= max_evals:
                    break
                rect = rects[idx]
                dims = rect.max_side_dims()
                level = int(rect.levels[dims[0]])
                delta = 3.0 ** (-(level + 1))
                samples: list[tuple[float, int, np.ndarray, float, np.ndarray, float]] = []
                for dim in dims:
                    if self._evals + 2 > max_evals:
                        break
                    plus = rect.center.copy()
                    plus[dim] = min(plus[dim] + delta, 1.0)
                    minus = rect.center.copy()
                    minus[dim] = max(minus[dim] - delta, 0.0)
                    f_plus = self._evaluate(plus)
                    f_minus = self._evaluate(minus)
                    samples.append((min(f_plus, f_minus), int(dim), plus, f_plus, minus, f_minus))
                    for candidate_value, candidate in ((f_plus, plus), (f_minus, minus)):
                        if candidate_value < best_value:
                            best_value = candidate_value
                            best_point = candidate.copy()
                if not samples:
                    continue
                progressed = True
                samples.sort(key=lambda s: s[0])
                for _, dim, plus, f_plus, minus, f_minus in samples:
                    rect.levels = rect.levels.copy()
                    rect.levels[dim] += 1
                    for child_center, child_value in ((plus, f_plus), (minus, f_minus)):
                        rects.append(
                            _Rect(center=child_center, levels=rect.levels.copy(), value=child_value)
                        )
            history.append(best_value)
            if not progressed:
                break
        return DirectResult(
            best_point=best_point,
            best_value=best_value,
            evaluations=self._evals,
            iterations=iteration,
            elapsed_s=time.perf_counter() - started,
            history=tuple(history),
        )


def _repair_assignment(formulation: MINLPFormulation, assignment: np.ndarray) -> list[list[int]]:
    """Split infeasible groups into feasible ones (singletons always fit).

    DIRECT's decoded best point may violate the fuzzy capacity; the repair
    repeatedly evicts the most-active member of each infeasible group into
    a fresh singleton group until every group fits.
    """
    problem = formulation.problem
    groups: list[list[int]] = []
    for j in np.unique(assignment):
        groups.append([int(i) for i in np.nonzero(assignment == j)[0]])
    items = problem.items
    repaired: list[list[int]] = []
    for members in groups:
        members = list(members)
        while members and not problem.fits([items[i] for i in members]):
            most_active = max(members, key=lambda i: items[i].active_epoch_count)
            members.remove(most_active)
            repaired.append([most_active])
        if members:
            repaired.append(members)
    return [[items[i].tenant_id for i in group] for group in repaired]


@profiled("packing.solve_livbp_with_direct")
def solve_livbp_with_direct(
    problem: LIVBPwFCProblem,
    max_evals: int = 2000,
    penalty_per_epoch: float = 1000.0,
) -> tuple[GroupingSolution, DirectResult]:
    """Solve a (tiny) LIVBPwFC instance via the MINLP + DIRECT route.

    Returns the repaired feasible solution and the raw optimizer result.
    """
    formulation = MINLPFormulation(problem, penalty_per_epoch=penalty_per_epoch)

    def objective(point: np.ndarray) -> float:
        return formulation.continuous_objective(point)

    optimizer = DirectOptimizer(objective, dims=formulation.num_tenants)
    result = optimizer.minimize(max_evals=max_evals)
    assignment = formulation.decode(result.best_point)
    groups = _repair_assignment(formulation, assignment)
    solution = GroupingSolution(
        problem, groups, solver="minlp-direct", solve_seconds=result.elapsed_s
    )
    return solution, result
