"""Tenant grouping: the LIVBPwFC optimization layer (Chapter 5, Appendix 9.1).

Grouping T tenants into tenant-groups is a **Largest Item Vector Bin
Packing Problem with Fuzzy Capacity**: each tenant (item) is a tuple
``(activity vector, nodes requested)``; a tenant-group (bin) is *not full*
as long as at least ``P%`` of epochs have at most ``R`` concurrently active
tenants; the cost of a bin is ``R * max(nodes requested)`` — TDD builds
``A = R`` MPPDBs sized to the largest tenant — and the objective is the
total cost.

Solvers, mirroring the paper's comparison:

* :mod:`~repro.packing.two_step` — the paper's 2-step heuristic
  (Algorithm 2): homogeneous initial groups, then greedy insertion
  minimizing the concurrency-histogram increase, highest level first.
* :mod:`~repro.packing.ffd` — the First-Fit-Decreasing baseline [18].
* :mod:`~repro.packing.minlp` + :mod:`~repro.packing.direct` — the MINLP
  formulation of Appendix 9.1 solved with a from-scratch DIRECT global
  optimizer (tiny instances only, as in the paper).
* :mod:`~repro.packing.exact` — exact branch-and-bound optimum for tiny
  instances (optimality-gap reference).
"""

from .exact import exact_grouping
from .ffd import ffd_grouping
from .livbp import (
    GroupingSolution,
    LIVBPwFCProblem,
    TenantGroup,
    group_concurrency,
    group_ttp,
)
from .minlp import MINLPFormulation
from .direct import DirectOptimizer, DirectResult, solve_livbp_with_direct
from .two_step import two_step_grouping

__all__ = [
    "GroupingSolution",
    "LIVBPwFCProblem",
    "TenantGroup",
    "group_concurrency",
    "group_ttp",
    "two_step_grouping",
    "ffd_grouping",
    "exact_grouping",
    "MINLPFormulation",
    "DirectOptimizer",
    "DirectResult",
    "solve_livbp_with_direct",
]
