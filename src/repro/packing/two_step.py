"""The paper's 2-step tenant-grouping heuristic (Algorithm 2).

**Step 1** puts tenants requesting the same number of nodes into the same
*initial group* — the cluster-design cost of a group is dictated by its
largest tenant, so mixing sizes wastes nodes.

**Step 2** splits each initial group into tenant-groups: seed a new group
with the least-active remaining tenant, then repeatedly add the tenant
``T_best`` that minimizes the increase of the time-percentage histogram of
concurrent-active counts — compared lexicographically from the highest
concurrency level downward, exactly the cascade of tie-breaks walked
through in Figure 5.3.  Stop (close the group and open a new one) when
adding ``T_best`` would drop the group's TTP below ``P``.

Implementation notes (DESIGN.md §5):

* Adding tenant ``c`` moves each of its active epochs from concurrency
  level ``v`` to ``v + 1``, so the candidate's histogram *after* insertion
  is determined by ``bincount(counts[c.epochs])``; comparing those
  bincounts highest-level-first is exactly the paper's rule, in
  ``O(|active epochs of c|)`` per candidate.
* Residual ties (identical histograms, Figure 5.3d) are broken toward the
  tenant with fewer active epochs, then the lower tenant id — matching the
  figure, where the one-epoch ``T_6`` is chosen over the six-epoch ``T_1``.
* Feasibility of adding ``c`` needs only the epochs where the group count
  already equals ``R``: each contributes one new violating epoch.
* When ``T_best`` is infeasible the group is closed *without* scanning for
  another feasible tenant — the literal Goto of Algorithm 2 (line 11).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..obs.profiling import profiled
from ..workload.activity import ActivityItem
from .livbp import TTP_TOL, GroupingSolution, LIVBPwFCProblem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime is lazy)
    from ..parallel.runner import ProcessPoolRunner

__all__ = ["two_step_grouping", "initial_groups", "pack_initial_group"]


def initial_groups(items: Sequence[ActivityItem]) -> dict[int, list[ActivityItem]]:
    """Step 1: partition items by requested node count (homogeneous sizes)."""
    groups: dict[int, list[ActivityItem]] = {}
    for item in items:
        groups.setdefault(item.nodes_requested, []).append(item)
    return groups


def _candidate_key(
    counts: np.ndarray, candidate: ActivityItem, histogram_length: int
) -> tuple[tuple[int, ...], int, int]:
    """Ordering key for ``T_best`` selection (smaller is better).

    The first component is the occupancy bincount of the candidate's active
    epochs, padded to a common length and reversed so tuple comparison runs
    highest-concurrency-level-first; the trailing components are the
    activity-count and tenant-id tie-breaks.
    """
    if candidate.epochs.size:
        hist = np.bincount(counts[candidate.epochs], minlength=histogram_length)
    else:
        hist = np.zeros(histogram_length, dtype=np.int64)
    return tuple(int(x) for x in hist[::-1]), candidate.active_epoch_count, candidate.tenant_id


def pack_initial_group(
    items: Sequence[ActivityItem],
    num_epochs: int,
    replication_factor: int,
    sla_fraction: float,
) -> list[list[int]]:
    """Step 2 for one homogeneous initial group (a shardable work unit).

    Initial groups are independent of each other — Step 2 never moves a
    tenant across node-size classes — so the parallel fabric runs one
    shard per initial group and concatenates the results in size order
    (:mod:`repro.parallel.tasks` registers this as the
    ``pack_initial_group`` task).  Takes scalar problem parameters rather
    than the whole :class:`LIVBPwFCProblem` so a shard ships only its own
    items across the process boundary.
    """
    d = num_epochs
    r = replication_factor
    p = sla_fraction
    remaining = sorted(items, key=lambda it: (it.active_epoch_count, it.tenant_id))
    groups: list[list[int]] = []
    while remaining:
        seed = remaining.pop(0)
        group_ids = [seed.tenant_id]
        counts = np.zeros(d, dtype=np.int32)
        counts[seed.epochs] += 1
        violations = int(np.count_nonzero(counts > r))
        while remaining:
            histogram_length = len(group_ids) + 1
            best_index = 0
            best_key = _candidate_key(counts, remaining[0], histogram_length)
            for index in range(1, len(remaining)):
                key = _candidate_key(counts, remaining[index], histogram_length)
                if key < best_key:
                    best_key = key
                    best_index = index
            best = remaining[best_index]
            new_violations = violations
            if best.epochs.size:
                new_violations += int(np.count_nonzero(counts[best.epochs] == r))
            if (d - new_violations) / d + TTP_TOL >= p:
                counts[best.epochs] += 1
                violations = new_violations
                group_ids.append(best.tenant_id)
                remaining.pop(best_index)
            else:
                # Algorithm 2 line 11: close this group, start a new one,
                # without probing whether another candidate would still fit.
                break
        groups.append(group_ids)
    return groups


@profiled("packing.two_step_grouping")
def two_step_grouping(
    problem: LIVBPwFCProblem, runner: "Optional[ProcessPoolRunner]" = None
) -> GroupingSolution:
    """Run Algorithm 2 on a LIVBPwFC instance.

    With a :class:`~repro.parallel.runner.ProcessPoolRunner`, each initial
    group (node-size class) packs in its own shard; the grouping produced
    is identical to the serial run because initial groups are independent
    and the merger concatenates them in ascending size order.  In that
    mode ``solve_seconds`` is the *sum of per-shard packing time* measured
    inside each shard with ``perf_counter`` — comparable to the serial
    number, free of pool-scheduling noise.
    """
    by_size = initial_groups(problem.items)
    if runner is not None and len(by_size) > 1:
        from ..parallel.merge import ResultMerger
        from ..parallel.tasks import pack_shards

        merged = ResultMerger().merge(runner.run(pack_shards(problem)))
        return GroupingSolution(
            problem,
            merged.flat(),
            solver="2-step",
            solve_seconds=merged.timings.get("pack_s", 0.0),
        )
    started = time.perf_counter()
    all_groups: list[list[int]] = []
    for nodes in sorted(by_size):
        all_groups.extend(
            pack_initial_group(
                by_size[nodes],
                problem.num_epochs,
                problem.replication_factor,
                problem.sla_fraction,
            )
        )
    elapsed = time.perf_counter() - started
    return GroupingSolution(problem, all_groups, solver="2-step", solve_seconds=elapsed)
