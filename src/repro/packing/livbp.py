"""The LIVBPwFC problem definition and solution containers.

Formal statement (Chapter 5): a tenant ``T_i`` is a tuple ``(A_i, n_i)``
where ``A_i`` is its 0/1 activity vector over ``d`` epochs and ``n_i`` its
node request.  A set ``S`` of tenants fits into a tenant-group iff::

    COUNT_{<=R}( sum_{T_i in S} A_i ) / d  >=  P%

i.e. at least ``P%`` of epochs have at most ``R`` concurrently active
tenants (the *fuzzy capacity*).  The cost of a group is ``R * max n_i``
(TDD builds ``A = R`` MPPDBs, each sized to the group's largest tenant);
the objective is to minimize total cost.

The classic vector bin packing problem is the special case with ``n_i``
ignored and ``P = 100%``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import PackingError
from ..workload.activity import ActivityItem, ActivityMatrix

__all__ = [
    "LIVBPwFCProblem",
    "TenantGroup",
    "GroupingSolution",
    "group_concurrency",
    "group_ttp",
]

#: Tolerance for TTP >= P comparisons (guards float noise on the boundary).
TTP_TOL = 1e-12


def group_concurrency(items: Iterable[ActivityItem], num_epochs: int) -> np.ndarray:
    """Per-epoch count of concurrently active tenants within a group."""
    counts = np.zeros(num_epochs, dtype=np.int32)
    for item in items:
        counts[item.epochs] += 1
    return counts


def group_ttp(items: Iterable[ActivityItem], num_epochs: int, replication_factor: int) -> float:
    """Total Time Percentage: fraction of epochs with at most ``R`` active tenants."""
    if num_epochs < 1:
        raise PackingError("num_epochs must be >= 1")
    if replication_factor < 1:
        raise PackingError("replication_factor must be >= 1")
    counts = group_concurrency(items, num_epochs)
    return float(np.count_nonzero(counts <= replication_factor)) / num_epochs


@dataclass(frozen=True)
class LIVBPwFCProblem:
    """One grouping problem instance."""

    items: tuple[ActivityItem, ...]
    num_epochs: int
    replication_factor: int
    sla_fraction: float

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise PackingError("num_epochs must be >= 1")
        if self.replication_factor < 1:
            raise PackingError("replication_factor must be >= 1")
        if not (0 < self.sla_fraction <= 1):
            raise PackingError(f"sla_fraction must be in (0, 1], got {self.sla_fraction!r}")
        ids = [item.tenant_id for item in self.items]
        if len(set(ids)) != len(ids):
            raise PackingError("tenant ids must be unique")
        object.__setattr__(self, "items", tuple(self.items))

    @classmethod
    def from_activity_matrix(
        cls, matrix: ActivityMatrix, replication_factor: int, sla_percent: float
    ) -> "LIVBPwFCProblem":
        """Build a problem from a discretized workload."""
        return cls(
            items=matrix.items,
            num_epochs=matrix.num_epochs,
            replication_factor=replication_factor,
            sla_fraction=sla_percent / 100.0,
        )

    def __len__(self) -> int:
        return len(self.items)

    def item(self, tenant_id: int) -> ActivityItem:
        """Look up an item by tenant id."""
        for item in self.items:
            if item.tenant_id == tenant_id:
                return item
        raise PackingError(f"unknown tenant {tenant_id!r}")

    def total_nodes_requested(self) -> int:
        """``N`` — what the tenants would use without consolidation."""
        return sum(item.nodes_requested for item in self.items)

    def fits(self, items: Sequence[ActivityItem]) -> bool:
        """Whether a tenant set satisfies the fuzzy capacity constraint."""
        ttp = group_ttp(items, self.num_epochs, self.replication_factor)
        return ttp + TTP_TOL >= self.sla_fraction

    def group_cost(self, items: Sequence[ActivityItem]) -> int:
        """``R * max n_i`` — nodes used by a group under TDD with ``A = R``."""
        if not items:
            raise PackingError("a group must contain at least one tenant")
        return self.replication_factor * max(item.nodes_requested for item in items)


@dataclass(frozen=True)
class TenantGroup:
    """One bin of a solution, with its audited statistics."""

    tenant_ids: tuple[int, ...]
    largest_nodes: int
    nodes_used: int
    ttp: float
    max_concurrent_active: int

    def __post_init__(self) -> None:
        if not self.tenant_ids:
            raise PackingError("a tenant group must be non-empty")

    def __len__(self) -> int:
        return len(self.tenant_ids)


class GroupingSolution:
    """A complete grouping with derived consolidation metrics.

    Construction audits each group (TTP, concurrency, cost) against the
    problem definition; :meth:`validate` additionally checks the partition
    property and the fuzzy capacity constraint.
    """

    def __init__(
        self,
        problem: LIVBPwFCProblem,
        groups: Sequence[Sequence[int]],
        solver: str = "",
        solve_seconds: float = 0.0,
    ) -> None:
        self.problem = problem
        self.solver = solver
        self.solve_seconds = float(solve_seconds)
        by_id = {item.tenant_id: item for item in problem.items}
        audited: list[TenantGroup] = []
        for tenant_ids in groups:
            ids = tuple(tenant_ids)
            if not ids:
                raise PackingError("groups must be non-empty")
            try:
                items = [by_id[i] for i in ids]
            except KeyError as exc:
                raise PackingError(f"group references unknown tenant {exc.args[0]!r}") from None
            counts = group_concurrency(items, problem.num_epochs)
            ttp = float(np.count_nonzero(counts <= problem.replication_factor)) / problem.num_epochs
            audited.append(
                TenantGroup(
                    tenant_ids=ids,
                    largest_nodes=max(item.nodes_requested for item in items),
                    nodes_used=problem.group_cost(items),
                    ttp=ttp,
                    max_concurrent_active=int(counts.max(initial=0)),
                )
            )
        self.groups: tuple[TenantGroup, ...] = tuple(audited)

    def __len__(self) -> int:
        return len(self.groups)

    @property
    def total_nodes_used(self) -> int:
        """Nodes used by the consolidated deployment."""
        return sum(group.nodes_used for group in self.groups)

    @property
    def nodes_saved(self) -> int:
        """Requested nodes minus used nodes."""
        return self.problem.total_nodes_requested() - self.total_nodes_used

    @property
    def consolidation_effectiveness(self) -> float:
        """Fraction of requested nodes saved — the paper's headline metric.

        "A 80% consolidation effectiveness means that if the tenants all
        together request 10000 machine nodes, Thrifty can serve all of them
        using 2000 nodes only" (§7.3).
        """
        requested = self.problem.total_nodes_requested()
        if requested == 0:
            raise PackingError("cannot compute effectiveness with zero requested nodes")
        return self.nodes_saved / requested

    @property
    def average_group_size(self) -> float:
        """Mean number of tenants per group (Figures 7.1b–7.6b)."""
        if not self.groups:
            raise PackingError("solution has no groups")
        return sum(len(g) for g in self.groups) / len(self.groups)

    def group_of(self, tenant_id: int) -> TenantGroup:
        """The group containing a tenant."""
        for group in self.groups:
            if tenant_id in group.tenant_ids:
                return group
        raise PackingError(f"tenant {tenant_id!r} is not in any group")

    def validate(self) -> None:
        """Check the partition property and the fuzzy capacity constraint."""
        seen: set[int] = set()
        for group in self.groups:
            overlap = seen.intersection(group.tenant_ids)
            if overlap:
                raise PackingError(f"tenants assigned to multiple groups: {sorted(overlap)[:5]}")
            seen.update(group.tenant_ids)
        expected = {item.tenant_id for item in self.problem.items}
        if seen != expected:
            missing = sorted(expected - seen)[:5]
            extra = sorted(seen - expected)[:5]
            raise PackingError(f"grouping is not a partition (missing={missing}, extra={extra})")
        for group in self.groups:
            if group.ttp + TTP_TOL < self.problem.sla_fraction:
                raise PackingError(
                    f"group {group.tenant_ids[:5]}... violates fuzzy capacity: "
                    f"TTP={group.ttp:.6f} < P={self.problem.sla_fraction:.6f}"
                )

    def summary(self) -> dict[str, float]:
        """Headline metrics as a plain dict (for reports and benches)."""
        return {
            "tenants": float(len(self.problem.items)),
            "groups": float(len(self.groups)),
            "nodes_requested": float(self.problem.total_nodes_requested()),
            "nodes_used": float(self.total_nodes_used),
            "effectiveness": self.consolidation_effectiveness,
            "avg_group_size": self.average_group_size,
            "solve_seconds": self.solve_seconds,
        }
