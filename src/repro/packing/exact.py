"""Exact optimum for tiny LIVBPwFC instances, by branch-and-bound.

The paper's optimal reference (MINLP + DIRECT) "has taken about 12 days to
compute the optimal solution for only 20 tenants" (§7.3); here a direct
branch-and-bound over set partitions plays the same role for the
optimality-gap tests and benches.  Tenants are assigned in order; each goes
into an existing group (if the fuzzy capacity still holds) or opens a new
one (canonical first-empty position only, which removes group-relabelling
symmetry).  The bound is the cost already committed — every group's cost is
monotone in membership, so a partial assignment's cost never decreases.

Practical up to ~12 tenants; guarded by an explicit limit.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import PackingError
from ..obs.profiling import profiled
from .livbp import TTP_TOL, GroupingSolution, LIVBPwFCProblem

__all__ = ["exact_grouping", "MAX_EXACT_TENANTS"]

#: Refuse instances larger than this (Bell number growth).
MAX_EXACT_TENANTS = 14


@profiled("packing.exact_grouping")
def exact_grouping(problem: LIVBPwFCProblem, max_tenants: int = MAX_EXACT_TENANTS) -> GroupingSolution:
    """Find a cost-optimal grouping by exhaustive branch-and-bound."""
    items = list(problem.items)
    if len(items) > max_tenants:
        raise PackingError(
            f"exact solver is limited to {max_tenants} tenants; got {len(items)} "
            "(use the 2-step heuristic at scale)"
        )
    started = time.perf_counter()
    d = problem.num_epochs
    r = problem.replication_factor
    p = problem.sla_fraction

    # Sorting by decreasing node request tightens the bound early: big
    # tenants commit their group's cost as soon as they are placed.
    items.sort(key=lambda it: (-it.nodes_requested, it.tenant_id))

    best_cost = [float("inf")]
    best_groups: list[list[int]] = []

    group_members: list[list[int]] = []
    group_counts: list[np.ndarray] = []
    group_violations: list[int] = []
    group_max_nodes: list[int] = []

    def current_cost() -> int:
        return sum(r * m for m in group_max_nodes)

    def recurse(index: int) -> None:
        if current_cost() >= best_cost[0]:
            return
        if index == len(items):
            best_cost[0] = current_cost()
            best_groups.clear()
            best_groups.extend([list(g) for g in group_members])
            return
        item = items[index]
        for gi in range(len(group_members)):
            counts = group_counts[gi]
            added_violations = 0
            if item.epochs.size:
                added_violations = int(np.count_nonzero(counts[item.epochs] == r))
            new_violations = group_violations[gi] + added_violations
            if (d - new_violations) / d + TTP_TOL < p:
                continue
            # Apply.
            group_members[gi].append(item.tenant_id)
            counts[item.epochs] += 1
            group_violations[gi] = new_violations
            old_max = group_max_nodes[gi]
            group_max_nodes[gi] = max(old_max, item.nodes_requested)
            recurse(index + 1)
            # Undo.
            group_max_nodes[gi] = old_max
            group_violations[gi] = new_violations - added_violations
            counts[item.epochs] -= 1
            group_members[gi].pop()
        # Open a new group (single canonical position).
        group_members.append([item.tenant_id])
        counts = np.zeros(d, dtype=np.int32)
        counts[item.epochs] += 1
        group_counts.append(counts)
        group_violations.append(int(np.count_nonzero(counts > r)))
        group_max_nodes.append(item.nodes_requested)
        recurse(index + 1)
        group_members.pop()
        group_counts.pop()
        group_violations.pop()
        group_max_nodes.pop()

    if items:
        recurse(0)
    elapsed = time.perf_counter() - started
    if not best_groups and items:
        raise PackingError("exact solver found no feasible partition")
    return GroupingSolution(problem, best_groups, solver="exact-bb", solve_seconds=elapsed)
