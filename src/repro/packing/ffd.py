"""First-Fit-Decreasing baseline for LIVBPwFC.

"Recent work [18] states that First-Fit-Decreasing (FFD) is a practical
heuristic to get approximate solutions [for vector bin packing].  FFD
suggests to sort all items according to a scalar value and inserts the
items into a bin according to that order.  An item is inserted into a new
bin if the current bin is full...  However, FFD was not especially designed
for the LIVBPwFC problem and it did not take into account the fuzzy
capacity constraint and the largest item." (Chapter 5)

The default baseline matches the paper's: items are sorted by the [18]
product-of-dimensions scalar collapsed over the *activity vector only* —
the node request (the *largest item*, which actually dictates a bin's
cost under TDD) plays no role in the ordering — and first-fit inserted
into the earliest bin whose fuzzy capacity still holds (bins must satisfy
the problem's constraint or the solution would be invalid).  That size
blindness is exactly why the 2-step heuristic saves 3.6–11.1 % more nodes
(§7.3).

Two knobs expose the neighbouring design points for the ablation benches:
``sort_key="volume"`` adds size awareness to the ordering (a strengthened
FFD), and ``fuzzy=False`` downgrades the bin-full test to the classic
hard vector-bin-packing capacity (no epoch may exceed ``R`` — far too
conservative for this problem, as the ablation shows).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..errors import PackingError
from ..obs.profiling import profiled
from ..workload.activity import ActivityItem
from .livbp import TTP_TOL, GroupingSolution, LIVBPwFCProblem

__all__ = ["ffd_grouping", "FFD_SORT_KEYS"]


def _volume_key(item: ActivityItem) -> float:
    """Size-aware scalar: nodes x active epochs (strengthened variant)."""
    return float(item.nodes_requested) * max(item.active_epoch_count, 1)


def _nodes_key(item: ActivityItem) -> float:
    """Pure size scalar: nodes requested only."""
    return float(item.nodes_requested)


def _activity_key(item: ActivityItem) -> float:
    """Activity scalar — the paper-faithful default (largest item ignored)."""
    return float(item.active_epoch_count)


#: Available FFD sort scalars, by name.
FFD_SORT_KEYS: dict[str, Callable[[ActivityItem], float]] = {
    "volume": _volume_key,
    "nodes": _nodes_key,
    "activity": _activity_key,
}


class _Bin:
    """Mutable first-fit bin state."""

    __slots__ = ("tenant_ids", "counts", "violations")

    def __init__(self, num_epochs: int) -> None:
        self.tenant_ids: list[int] = []
        # int16 suffices (a bin never holds 32k concurrently active
        # tenants) and halves memory — FFD keeps every bin's counter
        # alive, which matters at sub-second epoch sizes.
        self.counts = np.zeros(num_epochs, dtype=np.int16)
        self.violations = 0

    def fits_hard(self, item: ActivityItem, replication_factor: int) -> bool:
        """Classic VBP full-check: no epoch may exceed R."""
        if not item.epochs.size:
            return True
        return not bool(np.any(self.counts[item.epochs] >= replication_factor))

    def fits_fuzzy(self, item: ActivityItem, replication_factor: int, min_ok_fraction: float) -> bool:
        """Fuzzy-capacity check: at least P% of epochs stay <= R."""
        new_violations = self.violations
        if item.epochs.size:
            new_violations += int(
                np.count_nonzero(self.counts[item.epochs] == replication_factor)
            )
        d = self.counts.size
        return (d - new_violations) / d + TTP_TOL >= min_ok_fraction

    def add(self, item: ActivityItem, replication_factor: int) -> None:
        if item.epochs.size:
            self.violations += int(
                np.count_nonzero(self.counts[item.epochs] == replication_factor)
            )
        self.counts[item.epochs] += 1
        self.tenant_ids.append(item.tenant_id)


@profiled("packing.ffd_grouping")
def ffd_grouping(
    problem: LIVBPwFCProblem,
    sort_key: str = "activity",
    fuzzy: bool = True,
) -> GroupingSolution:
    """Run FFD on a LIVBPwFC instance.

    ``sort_key`` selects the decreasing-sort scalar (see
    :data:`FFD_SORT_KEYS`); ``fuzzy=False`` downgrades the bin-full test
    from the fuzzy ``P%`` constraint to the classic hard capacity.  The
    default (``"activity"``, fuzzy) is the paper's baseline.
    """
    try:
        key = FFD_SORT_KEYS[sort_key]
    except KeyError:
        raise PackingError(
            f"unknown FFD sort key {sort_key!r}; options: {sorted(FFD_SORT_KEYS)}"
        ) from None
    started = time.perf_counter()
    ordered = sorted(
        problem.items, key=lambda item: (-key(item), item.tenant_id)
    )
    bins: list[_Bin] = []
    for item in ordered:
        placed = False
        for bin_ in bins:
            if fuzzy:
                ok = bin_.fits_fuzzy(item, problem.replication_factor, problem.sla_fraction)
            else:
                ok = bin_.fits_hard(item, problem.replication_factor)
            if ok:
                bin_.add(item, problem.replication_factor)
                placed = True
                break
        if not placed:
            bin_ = _Bin(problem.num_epochs)
            bin_.add(item, problem.replication_factor)
            bins.append(bin_)
    elapsed = time.perf_counter() - started
    solver = f"ffd:{sort_key}" if fuzzy else f"ffd-hard:{sort_key}"
    return GroupingSolution(
        problem,
        [bin_.tenant_ids for bin_ in bins],
        solver=solver,
        solve_seconds=elapsed,
    )
